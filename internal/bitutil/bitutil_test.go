package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLSBBasics(t *testing.T) {
	cases := []struct {
		x    uint64
		logN uint
		want uint
	}{
		{0, 32, 32}, // paper convention: lsb(0) = log n
		{0, 20, 20},
		{1, 32, 0},
		{2, 32, 1},
		{6, 32, 1}, // paper's worked example: lsb(6) = 1
		{8, 32, 3},
		{1 << 31, 32, 31},
		{1 << 63, 32, 63},
		{0xF0, 32, 4},
	}
	for _, c := range cases {
		if got := LSB(c.x, c.logN); got != c.want {
			t.Errorf("LSB(%#x, %d) = %d, want %d", c.x, c.logN, got, c.want)
		}
	}
}

func TestLSBGeometricDistribution(t *testing.T) {
	// For uniform x, Pr[LSB(x)=s] = 2^{-(s+1)}: the subsampling property
	// the paper's level assignment relies on.
	rng := rand.New(rand.NewSource(1))
	const trials = 1 << 20
	counts := make([]int, 8)
	for i := 0; i < trials; i++ {
		s := LSB(rng.Uint64()|1<<40, 41) // ensure nonzero below bit 41
		if s < 8 {
			counts[s]++
		}
	}
	for s := 0; s < 8; s++ {
		want := float64(trials) / float64(uint64(2)<<uint(s))
		got := float64(counts[s])
		if got < 0.9*want || got > 1.1*want {
			t.Errorf("LSB level %d: got %v hits, want about %v", s, got, want)
		}
	}
}

func TestMSB(t *testing.T) {
	cases := []struct {
		x    uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {255, 7}, {256, 8},
		{1<<63 - 1, 62}, {1 << 63, 63},
	}
	for _, c := range cases {
		if got := MSB(c.x); got != c.want {
			t.Errorf("MSB(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 40, 40}, {1<<40 + 1, 41},
	}
	for _, c := range cases {
		if got := CeilLog2(c.x); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilFloorLogRelation(t *testing.T) {
	// Property: for x >= 2, FloorLog2(x) <= CeilLog2(x) <= FloorLog2(x)+1,
	// with equality on the left exactly for powers of two.
	f := func(x uint64) bool {
		if x < 2 {
			return true
		}
		fl, cl := FloorLog2(x), CeilLog2(x)
		if IsPow2(x) {
			return fl == cl
		}
		return cl == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ x, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
		{1 << 62, 1 << 62}, {1<<62 + 1, 1 << 63},
	}
	for _, c := range cases {
		if got := NextPow2(c.x); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestNextPow2Property(t *testing.T) {
	f := func(x uint64) bool {
		x %= 1 << 62
		p := NextPow2(x)
		return IsPow2(p) && p >= x && (p == 1 || p/2 < x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextPow2PanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextPow2(1<<63+1) should panic")
		}
	}()
	NextPow2(1<<63 + 1)
}

func TestPow2AndMask(t *testing.T) {
	for k := uint(0); k < 64; k++ {
		if Pow2(k) != uint64(1)<<k {
			t.Fatalf("Pow2(%d) wrong", k)
		}
		if Mask(k) != uint64(1)<<k-1 {
			t.Fatalf("Mask(%d) wrong", k)
		}
	}
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64) should be all ones")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pow2(64) should panic")
		}
	}()
	Pow2(64)
}

func TestBitVectorBasic(t *testing.T) {
	b := NewBitVector(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh vector should be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	b.Set(129) // idempotent
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get disagrees with Set")
	}
	b.Clear(64)
	b.Clear(64) // idempotent
	if b.Count() != 2 || b.Get(64) {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 || b.Get(0) {
		t.Fatal("Reset failed")
	}
}

func TestBitVectorCountMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBitVector(777)
	model := make(map[int]bool)
	for op := 0; op < 20000; op++ {
		i := rng.Intn(777)
		if rng.Intn(2) == 0 {
			b.Set(i)
			model[i] = true
		} else {
			b.Clear(i)
			delete(model, i)
		}
		if op%997 == 0 && b.Count() != len(model) {
			t.Fatalf("op %d: Count=%d model=%d", op, b.Count(), len(model))
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("final Count=%d model=%d", b.Count(), len(model))
	}
}

func TestBitVectorOr(t *testing.T) {
	a := NewBitVector(200)
	b := NewBitVector(200)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(199)
	a.Or(b)
	if a.Count() != 3 || !a.Get(1) || !a.Get(100) || !a.Get(199) {
		t.Fatal("Or merged incorrectly")
	}
}

func TestBitVectorOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths should panic")
		}
	}()
	NewBitVector(10).Or(NewBitVector(11))
}

func TestBitVectorClone(t *testing.T) {
	a := NewBitVector(100)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Get(8) || !c.Get(7) || c.Count() != 2 || a.Count() != 1 {
		t.Fatal("Clone is not independent")
	}
}

func TestBitVectorOutOfRangePanics(t *testing.T) {
	b := NewBitVector(10)
	for _, f := range []func(){
		func() { b.Get(10) },
		func() { b.Set(-1) },
		func() { b.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestBitVectorSpaceBits(t *testing.T) {
	if got := NewBitVector(1).SpaceBits(); got != 64 {
		t.Errorf("SpaceBits(1 bit) = %d, want 64", got)
	}
	if got := NewBitVector(128).SpaceBits(); got != 128 {
		t.Errorf("SpaceBits(128 bits) = %d, want 128", got)
	}
}

func BenchmarkLSB(b *testing.B) {
	x := uint64(0xdeadbeefcafe)
	var s uint
	for i := 0; i < b.N; i++ {
		s += LSB(x+uint64(i), 64)
	}
	_ = s
}

func BenchmarkBitVectorSet(b *testing.B) {
	v := NewBitVector(1 << 16)
	for i := 0; i < b.N; i++ {
		v.Set(i & (1<<16 - 1))
	}
}
