package bitutil

import (
	"fmt"
	"math/bits"
)

// BitVector is a fixed-length packed bit array with O(1) get/set and a
// maintained population count, so that reporting |{i : B_i = 1}| — the
// quantity T_B(t) in Section 3.3 of the paper — costs O(1) at any time.
type BitVector struct {
	words []uint64
	n     int
	ones  int
}

// NewBitVector returns a BitVector of n bits, all zero.
func NewBitVector(n int) *BitVector {
	if n < 0 {
		panic("bitutil: negative BitVector length")
	}
	return &BitVector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (b *BitVector) Len() int { return b.n }

// Get returns the value of bit i.
func (b *BitVector) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1 and updates the maintained count.
func (b *BitVector) Set(i int) {
	b.check(i)
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.ones++
	}
}

// Clear sets bit i to 0 and updates the maintained count.
func (b *BitVector) Clear(i int) {
	b.check(i)
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.ones--
	}
}

// Count returns the number of set bits in O(1) time.
func (b *BitVector) Count() int { return b.ones }

// Reset clears all bits.
func (b *BitVector) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.ones = 0
}

// Or merges other into b (bitwise OR). Both vectors must have the same
// length; this is how two same-seed small-F0 bit arrays are merged when
// taking the union of two streams.
func (b *BitVector) Or(other *BitVector) {
	if b.n != other.n {
		panic("bitutil: BitVector length mismatch in Or")
	}
	ones := 0
	for i := range b.words {
		b.words[i] |= other.words[i]
		ones += bits.OnesCount64(b.words[i])
	}
	b.ones = ones
}

// Clone returns a deep copy of b.
func (b *BitVector) Clone() *BitVector {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitVector{words: w, n: b.n, ones: b.ones}
}

// Words exposes the packed representation (read-only by convention);
// used for serialization and space accounting.
func (b *BitVector) Words() []uint64 { return b.words }

// SpaceBits returns the number of bits of state the vector occupies,
// counting only the packed payload (headers are O(1) words).
func (b *BitVector) SpaceBits() int { return 64 * len(b.words) }

func (b *BitVector) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitutil: bit index %d out of range [0,%d)", i, b.n))
	}
}
