// Package bitutil provides constant-time bit-level primitives used
// throughout the KNW distinct-elements algorithms.
//
// The paper (Section 1.2 and Theorem 5) assumes a word RAM in which the
// least- and most-significant set bits of a machine word can be computed
// in O(1) time, citing Brodnik and Fredman–Willard. On modern hardware
// these are single instructions, exposed in Go through math/bits; this
// package wraps them with the paper's exact conventions (in particular
// lsb(0) = log n, Section 1.2).
package bitutil

import "math/bits"

// LSB returns the 0-based index of the least significant set bit of x.
// Following the paper's convention (Section 1.2), LSB(0, logN) = logN:
// an all-zero hash value is treated as having "depth" log n, the deepest
// possible subsampling level.
func LSB(x uint64, logN uint) uint {
	if x == 0 {
		return logN
	}
	return uint(bits.TrailingZeros64(x))
}

// MSB returns the 0-based index of the most significant set bit of x.
// MSB(0) is defined as 0 so that callers computing ceil(log2) of
// non-negative quantities never index out of range.
func MSB(x uint64) uint {
	if x == 0 {
		return 0
	}
	return uint(63 - bits.LeadingZeros64(x))
}

// CeilLog2 returns ceil(log2(x)) for x >= 1, and 0 for x == 0 or 1.
// The Figure 3 update rule charges each counter ceil(log(C+2)) bits of
// storage; this is the constant-time "most significant bit computation"
// the paper refers to in the proof of Theorem 9.
func CeilLog2(x uint64) uint {
	if x <= 1 {
		return 0
	}
	return uint(64 - bits.LeadingZeros64(x-1))
}

// FloorLog2 returns floor(log2(x)) for x >= 1, and 0 for x == 0.
func FloorLog2(x uint64) uint {
	return MSB(x)
}

// IsPow2 reports whether x is a power of two (x > 0 and a single bit set).
func IsPow2(x uint64) bool {
	return x != 0 && x&(x-1) == 0
}

// NextPow2 returns the smallest power of two >= x (and 1 for x <= 1).
// It panics if x > 1<<63, since the result would not fit in a uint64.
func NextPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	if x > 1<<63 {
		panic("bitutil: NextPow2 overflow")
	}
	return 1 << CeilLog2(x)
}

// Pow2 returns 1 << k as a uint64. It panics for k >= 64.
func Pow2(k uint) uint64 {
	if k >= 64 {
		panic("bitutil: Pow2 exponent out of range")
	}
	return 1 << k
}

// Mask returns a mask with the low k bits set. Mask(64) is all ones.
func Mask(k uint) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (1 << k) - 1
}
