package binenc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(-12345)
	w.Varint(12345)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.Uints([]uint64{1, 2, 3, 1 << 60})

	r := Reader{Buf: w.Buf}
	if r.Uvarint() != 0 || r.Uvarint() != math.MaxUint64 {
		t.Fatal("uvarint roundtrip")
	}
	if r.Varint() != -12345 || r.Varint() != 12345 {
		t.Fatal("varint roundtrip")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool roundtrip")
	}
	if string(r.Bytes()) != "hello" || len(r.Bytes()) != 0 {
		t.Fatal("bytes roundtrip")
	}
	got := r.Uints(10)
	if len(got) != 4 || got[3] != 1<<60 {
		t.Fatalf("uints roundtrip: %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if len(r.Buf) != 0 {
		t.Fatalf("%d bytes left over", len(r.Buf))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, v int64, b bool, bs []byte) bool {
		var w Writer
		w.Uvarint(u)
		w.Varint(v)
		w.Bool(b)
		w.Bytes(bs)
		r := Reader{Buf: w.Buf}
		gu, gv, gb, gbs := r.Uvarint(), r.Varint(), r.Bool(), r.Bytes()
		return r.Err() == nil && gu == u && gv == v && gb == b && string(gbs) == string(bs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var w Writer
	w.Uvarint(300)
	w.Bytes([]byte("abcdef"))
	for cut := 0; cut < len(w.Buf); cut++ {
		r := Reader{Buf: w.Buf[:cut]}
		r.Uvarint()
		r.Bytes()
		if r.Err() == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := Reader{Buf: nil}
	r.Uvarint() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads return zero values, error unchanged.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Bool() || r.Bytes() != nil {
		t.Fatal("reads after error should be inert")
	}
}

func TestUintsBound(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 40) // absurd length header
	r := Reader{Buf: w.Buf}
	if r.Uints(1000) != nil || r.Err() == nil {
		t.Fatal("oversized length must be rejected")
	}
}

func TestBadBoolByte(t *testing.T) {
	r := Reader{Buf: []byte{7}}
	r.Bool()
	if r.Err() == nil {
		t.Fatal("byte 7 is not a bool")
	}
}

func TestExpect(t *testing.T) {
	var w Writer
	w.Uvarint(42)
	r := Reader{Buf: w.Buf}
	r.Expect(42, "magic")
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	r2 := Reader{Buf: w.Buf}
	r2.Expect(43, "magic")
	if r2.Err() == nil {
		t.Fatal("wrong magic must error")
	}
}
