// Package binenc provides the minimal varint-based encoder/decoder the
// sketch serialization uses (MarshalBinary/UnmarshalBinary on the
// public types). Hash functions are never serialized: sketches are
// reconstructed deterministically from their seed and configuration,
// so the payload is only the dynamic counter state.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a payload is truncated or malformed.
var ErrCorrupt = errors.New("binenc: corrupt or truncated payload")

// Writer appends primitive values to a byte buffer.
type Writer struct {
	Buf []byte
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.Buf = binary.AppendUvarint(w.Buf, v) }

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(v int64) { w.Buf = binary.AppendVarint(w.Buf, v) }

// Bool appends a single byte 0/1.
func (w *Writer) Bool(b bool) {
	if b {
		w.Buf = append(w.Buf, 1)
	} else {
		w.Buf = append(w.Buf, 0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Uints appends a length-prefixed slice of uvarints.
func (w *Writer) Uints(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(v)
	}
}

// Reader consumes primitive values from a byte buffer. The first
// decoding error sticks; check Err (or use the returned zero values
// knowingly) after a batch of reads.
type Reader struct {
	Buf []byte
	err error
}

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.Buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Buf = r.Buf[n:]
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.Buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Buf = r.Buf[n:]
	return v
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.Buf) < 1 {
		r.fail()
		return false
	}
	b := r.Buf[0]
	r.Buf = r.Buf[1:]
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice (copied).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.Buf)) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.Buf[:n])
	r.Buf = r.Buf[n:]
	return out
}

// BytesView reads a length-prefixed byte slice without copying: the
// returned slice aliases the reader's buffer. For transient framing
// reads (envelope unwrapping, per-section dispatch) where the view is
// fully consumed before the underlying buffer is reused; use Bytes
// when the bytes outlive the decode.
func (r *Reader) BytesView() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.Buf)) < n {
		r.fail()
		return nil
	}
	out := r.Buf[:n:n]
	r.Buf = r.Buf[n:]
	return out
}

// Uints reads a length-prefixed uvarint slice. maxLen guards against
// corrupt headers allocating unbounded memory.
func (r *Reader) Uints(maxLen int) []uint64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(maxLen) {
		r.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uvarint()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Expect checks a magic/version marker.
func (r *Reader) Expect(want uint64, what string) {
	if got := r.Uvarint(); r.err == nil && got != want {
		r.err = fmt.Errorf("binenc: bad %s: got %d want %d", what, got, want)
	}
}
