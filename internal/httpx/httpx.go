// Package httpx is the HTTP plumbing shared by the single-node
// service layer and the cluster router: body limits, content-type
// detection, error→status mapping, and JSON replies. The two layers
// are the same wire surface reached by different paths (the cluster
// router forwards to the service's leaf ingest), so their limits and
// mappings must never drift apart — they live here once.
package httpx

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

const (
	// MaxBodyBytes bounds any request body (key batches, envelopes): a
	// merge of a large sharded sketch fits comfortably; unbounded
	// uploads do not.
	MaxBodyBytes = 64 << 20
	// MaxKeyBytes caps one newline-delimited key; a line longer than
	// this fails the request rather than growing buffers without bound.
	MaxKeyBytes = 1 << 20
	// FrameContentType selects the binary ingest frame body format:
	// length-prefixed docs of pre-hashed uint64 keys (internal/frame).
	FrameContentType = "application/x-knw-frame"
)

// IsJSON reports whether a Content-Type selects the JSON ingest body
// format.
func IsJSON(contentType string) bool {
	return strings.HasPrefix(contentType, "application/json")
}

// IsFrame reports whether a Content-Type selects the binary ingest
// frame body format.
func IsFrame(contentType string) bool {
	return strings.HasPrefix(contentType, FrameContentType)
}

// ReadStatus maps a request-body read failure to a status: oversize
// bodies are 413, every other mid-stream failure (client abort,
// truncated chunked encoding, malformed JSON) is a 400 — always with
// a JSON error body, never a bare 500.
func ReadStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Fail writes a JSON error response.
func Fail(w http.ResponseWriter, status int, err error) {
	Reply(w, status, map[string]any{"error": err.Error()})
}

// Reply writes v as the JSON response body with the given status.
func Reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
