package rough

import (
	"fmt"

	"repro/internal/binenc"
)

// AppendState serializes the estimator's dynamic state (counters,
// suffix occupancy, cursors). Hash functions are not serialized —
// callers reconstruct the estimator from its seed and configuration
// first, then restore state.
func (e *Estimator) AppendState(w *binenc.Writer) {
	w.Uvarint(uint64(e.kre))
	w.Uvarint(uint64(e.logN))
	for j := range e.subs {
		s := &e.subs[j]
		cs := make([]uint64, len(s.c))
		for i, c := range s.c {
			cs[i] = uint64(c + 1) // −1 → 0 keeps the varints tiny
		}
		w.Uints(cs)
		ts := make([]uint64, len(s.t))
		for i, t := range s.t {
			ts[i] = uint64(t)
		}
		w.Uints(ts)
		w.Varint(int64(s.r))
	}
}

// RestoreState loads state produced by AppendState into an estimator
// built with the same configuration and seed.
func (e *Estimator) RestoreState(r *binenc.Reader) error {
	if kre := r.Uvarint(); r.Err() == nil && int(kre) != e.kre {
		return fmt.Errorf("rough: state KRE %d does not match estimator KRE %d", kre, e.kre)
	}
	if logN := r.Uvarint(); r.Err() == nil && uint(logN) != e.logN {
		return fmt.Errorf("rough: state LogN %d does not match estimator LogN %d", logN, e.logN)
	}
	for j := range e.subs {
		s := &e.subs[j]
		cs := r.Uints(e.kre)
		ts := r.Uints(int(e.logN) + 2)
		rr := r.Varint()
		if r.Err() != nil {
			return r.Err()
		}
		if len(cs) != len(s.c) || len(ts) != len(s.t) {
			return binenc.ErrCorrupt
		}
		for i, v := range cs {
			if v > uint64(e.logN)+1 {
				return binenc.ErrCorrupt
			}
			s.c[i] = int8(int(v) - 1)
		}
		for i, v := range ts {
			s.t[i] = uint32(v)
		}
		if rr < -1 || rr > int64(e.logN) {
			return binenc.ErrCorrupt
		}
		s.r = int(rr)
	}
	return nil
}
