package rough

import (
	"math/rand"
	"testing"
)

// TestChunkPathMatchesScalar drives one estimator through scalar
// Update and a twin through Precompute/ApplyChunk and requires
// identical counters, occupancy, cursors, and estimates at every chunk
// boundary — the contract the core batch paths rely on for
// byte-identical sketches.
func TestChunkPathMatchesScalar(t *testing.T) {
	for _, fast := range []bool{true, false} {
		name := "tabulation"
		if !fast {
			name = "polynomial"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{LogN: 32, Fast: fast}
			scalar := New(cfg, rand.New(rand.NewSource(42)))
			batched := New(cfg, rand.New(rand.NewSource(42)))
			rng := rand.New(rand.NewSource(7))
			var sc Scratch
			var idxs [ChunkSize]int32
			var ests [ChunkSize]uint64
			for round := 0; round < 50; round++ {
				n := 1 + rng.Intn(ChunkSize)
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64() >> uint(rng.Intn(24)) // vary density
				}
				// Scalar side, recording the estimate after each key.
				want := make([]uint64, n)
				for i, k := range keys {
					scalar.Update(k)
					want[i] = scalar.Estimate()
				}
				batched.Precompute(keys, &sc)
				r0, m := batched.ApplyChunk(&sc, n, &idxs, &ests)
				// Replay: the estimate at position i is the last change
				// point's value (or r0), exactly what core consults.
				p := 0
				r := r0
				for i := 0; i < n; i++ {
					if p < m && int(idxs[p]) == i {
						r = ests[p]
						p++
					}
					if r != want[i] && !(r == 0 && want[i] == 0) {
						t.Fatalf("round %d key %d: replayed estimate %d, scalar %d", round, i, r, want[i])
					}
				}
				if got, wantE := batched.Estimate(), scalar.Estimate(); got != wantE {
					t.Fatalf("round %d: estimates diverged %d vs %d", round, got, wantE)
				}
				for j := range scalar.subs {
					a, b := &scalar.subs[j], &batched.subs[j]
					if a.r != b.r {
						t.Fatalf("round %d sub %d: cursor %d vs %d", round, j, a.r, b.r)
					}
					for i := range a.c {
						if a.c[i] != b.c[i] {
							t.Fatalf("round %d sub %d counter %d diverged", round, j, i)
						}
					}
					for i := range a.t {
						if a.t[i] != b.t[i] {
							t.Fatalf("round %d sub %d occupancy %d diverged", round, j, i)
						}
					}
				}
			}
		})
	}
}
