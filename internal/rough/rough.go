// Package rough implements RoughEstimator (Figure 2 of the paper): a
// constant-factor F0 approximation that holds, with probability 1−o(1),
// simultaneously at every point t of the stream, using O(log n) bits.
//
// This all-times guarantee is the paper's key enabler for the full
// algorithm: Figure 3 consults the rough estimate R(t) on every update
// to decide the subsampling depth b, so R must be correct at all times,
// not just at the end. Previous constant-factor subroutines needed
// O(log n · log m) bits for an all-times guarantee via union bound over
// the stream; Theorem 1 gets it in O(log n) by observing that the
// estimate is monotone and only log n distinct doubling times matter.
//
// Structure (Figure 2): three independent sub-estimators, each with
// K_RE counters. Sub-estimator j hashes item i to a counter via
// h3(h2(i)) and records the maximum subsampling level lsb(h1(i)) seen
// in that counter. T_r = |{i : C_i ≥ r}| is the occupancy at level r;
// the estimate is 2^r*·K_RE for the largest r* with T_r* ≥ ρ·K_RE,
// where ρ = 0.99·(1 − e^{−1/3}). The output is the median of the three
// sub-estimates and, being monotone in t, satisfies
// F0(t) ≤ Est(t) ≤ 8·F0(t) for all t with F0(t) ≥ K_RE (Theorem 1).
//
// Reporting is O(1): each sub-estimator maintains the suffix occupancy
// counts T_r incrementally and a monotone cursor r* that only ever
// advances (Lemma 5's windowed deamortization achieves worst-case O(1);
// our cursor is amortized O(1) with a worst case bounded by
// log n ≤ 64 word operations — constant on the word RAM the paper
// assumes).
package rough

import (
	"math"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// Rho is the occupancy threshold fraction ρ = 0.99·(1 − e^{−1/3}) from
// Figure 2.
var Rho = 0.99 * (1 - math.Exp(-1.0/3.0))

// PaperKRE returns the paper's K_RE = max(8, log(n)/loglog(n))
// (Figure 2, step 1) for a universe of 2^logN items.
func PaperKRE(logN uint) int {
	if logN < 2 {
		return 8
	}
	ll := math.Log2(float64(logN))
	k := int(float64(logN) / ll)
	if k < 8 {
		k = 8
	}
	return k
}

// DefaultKRE returns the library's default K_RE: the paper's asymptotic
// choice makes the failure probability O(log n / K_RE²) = o(1) only as
// n → ∞; at practical n (2^32) that bound is vacuous, so we take
// K_RE = max(64, paper value), rounded to a power of two. This is a
// constant-factor space change (still O(log n) bits total) that makes
// Theorem 1's event hold with probability ≳ 0.99 at realistic n;
// experiment E2 measures both choices.
func DefaultKRE(logN uint) int {
	k := PaperKRE(logN)
	if k < 64 {
		k = 64
	}
	return int(bitutil.NextPow2(uint64(k)))
}

// Config parameterizes a RoughEstimator.
type Config struct {
	// LogN is log2 of the universe size (items are hashed into [2^LogN]).
	LogN uint
	// KRE is the number of counters per sub-estimator; 0 means
	// DefaultKRE(LogN). Power of two recommended so downstream
	// doubling tests are exact.
	KRE int
	// Fast selects the O(1)-evaluation mixed-tabulation family for h3
	// (the Lemma 5 / Theorem 6 substitution) instead of the
	// 2·K_RE-wise Carter–Wegman polynomial the reference analysis uses.
	Fast bool
}

// Estimator is the Figure 2 structure.
type Estimator struct {
	logN uint
	kre  int
	// thresh is ⌈ρ·K_RE⌉ compared against the integer occupancy T_r.
	thresh int
	subs   [3]sub
}

type sub struct {
	h1 *hashfn.TwoWise // [n] → [0, n−1]; its lsb is the subsampling level
	h2 *hashfn.TwoWise // [n] → [K_RE³]: perfect-hashing stage
	h3 hashfn.Family   // [K_RE³] → [K_RE]: balls-and-bins stage
	c  []int8          // counters, −1 (empty) .. logN
	t  []uint32        // t[r] = |{i : c[i] ≥ r}|, r ∈ [0, logN]
	r  int             // monotone cursor: largest r with t[r] ≥ thresh, or −1
}

// New draws a fresh RoughEstimator using randomness from rng.
func New(cfg Config, rng *rand.Rand) *Estimator {
	if cfg.LogN == 0 || cfg.LogN > 62 {
		panic("rough: LogN must be in [1, 62]")
	}
	kre := cfg.KRE
	if kre == 0 {
		kre = DefaultKRE(cfg.LogN)
	}
	if kre < 2 {
		panic("rough: KRE too small")
	}
	e := &Estimator{logN: cfg.LogN, kre: kre}
	e.thresh = int(math.Ceil(Rho * float64(kre)))
	k3 := uint64(kre) * uint64(kre) * uint64(kre)
	for j := range e.subs {
		s := &e.subs[j]
		s.h1 = hashfn.NewTwoWise(rng, 1) // raw field output used
		s.h2 = hashfn.NewTwoWise(rng, k3)
		if cfg.Fast {
			s.h3 = hashfn.NewTabulation32(rng, uint64(kre))
		} else {
			// Figure 2 asks for 2·K_RE-wise independence on [K_RE³].
			s.h3 = hashfn.NewKWise(rng, 2*kre, uint64(kre))
		}
		s.c = make([]int8, kre)
		for i := range s.c {
			s.c[i] = -1
		}
		s.t = make([]uint32, cfg.LogN+2)
		s.r = -1
	}
	return e
}

// KRE returns the per-sub-estimator counter count.
func (e *Estimator) KRE() int { return e.kre }

// Update feeds stream item i (Figure 2, step 4):
// C_{h3(h2(i))} ← max(C_{h3(h2(i))}, lsb(h1(i))).
func (e *Estimator) Update(i uint64) {
	mask := bitutil.Mask(e.logN)
	for j := range e.subs {
		s := &e.subs[j]
		lvl := int8(bitutil.LSB(s.h1.HashField(i)&mask, e.logN))
		idx := s.h3.Hash(s.h2.Hash(i))
		if old := s.c[idx]; lvl > old {
			s.c[idx] = lvl
			// Maintain suffix occupancy: levels (old, lvl] gain a counter.
			lo := int(old) + 1
			if lo < 0 {
				lo = 0
			}
			for r := lo; r <= int(lvl); r++ {
				s.t[r]++
			}
		}
	}
}

// ChunkSize is the number of keys a Scratch holds — the chunk
// granularity of the batched ingestion path throughout the module.
const ChunkSize = 512

// Scratch holds one chunk's precomputed hash values for ApplyChunk.
// Allocate it once per batch loop and reuse it; it is a few KB and
// lives happily on the stack.
type Scratch struct {
	lvl [3][ChunkSize]int8
	idx [3][ChunkSize]int32
}

// Precompute fills sc with the hash values Update would compute for
// each key — per sub-estimator, the subsampling level lsb(h1(key)) and
// the counter index h3(h2(key)) — evaluating each hash family over the
// whole chunk in a tight loop (devirtualized for the tabulation h3).
// Batched callers precompute a chunk, then replay it key by key with
// UpdatePrecomputed so the estimate sequence (and hence all downstream
// rescale decisions) is identical to scalar Update calls.
func (e *Estimator) Precompute(keys []uint64, sc *Scratch) {
	var red [ChunkSize]uint64
	if len(keys) > ChunkSize {
		panic("rough: chunk exceeds ChunkSize")
	}
	hashfn.ReduceChunk(keys, red[:len(keys)])
	e.PrecomputeReduced(red[:len(keys)], sc)
}

// PrecomputeReduced is Precompute for callers that already hold the
// keys' M61 reductions (the core batch paths compute them for their
// own hash chunking; sharing skips a second reduction pass).
func (e *Estimator) PrecomputeReduced(red []uint64, sc *Scratch) {
	n := len(red)
	if n > ChunkSize {
		panic("rough: chunk exceeds ChunkSize")
	}
	mask := bitutil.Mask(e.logN)
	var z [ChunkSize]uint64
	for j := range e.subs {
		s := &e.subs[j]
		s.h1.HashFieldChunkReduced(red[:n], z[:n])
		for i, v := range z[:n] {
			sc.lvl[j][i] = int8(bitutil.LSB(v&mask, e.logN))
		}
		s.h2.HashChunkReduced(red[:n], z[:n])
		if tab, ok := s.h3.(*hashfn.Tabulation32); ok {
			tab.HashChunk32(z[:n], sc.idx[j][:n])
		} else {
			for i, v := range z[:n] {
				sc.idx[j][i] = int32(s.h3.Hash(v))
			}
		}
	}
}

// ApplyChunk applies the first n precomputed updates of sc in order —
// state-identical to Update of each key — and records the change
// points sparsely: on return, idxs[:m] holds (ascending) the positions
// whose update changed some counter and ests[:m] the estimate right
// after each such update; between change points the estimate is
// provably unmoved (it is pure in the counters and monotone). r0 is
// the estimate from before the chunk. Batched callers replay their
// per-key estimate consultations against this record instead of
// calling Estimate per key — the dominant steady-state rough cost.
func (e *Estimator) ApplyChunk(sc *Scratch, n int, idxs *[ChunkSize]int32, ests *[ChunkSize]uint64) (r0 uint64, m int) {
	r0 = e.Estimate()
	for i := 0; i < n; i++ {
		changed := false
		for j := range e.subs {
			s := &e.subs[j]
			lvl := sc.lvl[j][i]
			if idx := sc.idx[j][i]; lvl > s.c[idx] {
				old := s.c[idx]
				s.c[idx] = lvl
				changed = true
				lo := int(old) + 1
				if lo < 0 {
					lo = 0
				}
				for r := lo; r <= int(lvl); r++ {
					s.t[r]++
				}
			}
		}
		if changed {
			idxs[m] = int32(i)
			ests[m] = e.Estimate()
			m++
		}
	}
	return r0, m
}

// Estimate returns the current rough estimate of F0 (Figure 2, step 5):
// the median of 2^{r*_j}·K_RE over the three sub-estimators. It returns
// 0 while no sub-estimator has reached its threshold (F0 ≲ K_RE; the
// full algorithm does not consult R in that regime — Section 3.3's
// small-F0 machinery governs there). The returned values are
// non-decreasing in stream time.
func (e *Estimator) Estimate() uint64 {
	var rs [3]int
	for j := range e.subs {
		s := &e.subs[j]
		// Advance the monotone cursor. T_r is non-increasing in r and
		// non-decreasing in time, so the largest satisfying r only grows.
		for s.r+1 <= int(e.logN) && int(s.t[s.r+1]) >= e.thresh {
			s.r++
		}
		rs[j] = s.r
	}
	m := median3(rs[0], rs[1], rs[2])
	if m < 0 {
		return 0
	}
	return uint64(e.kre) << uint(m)
}

// MergeFrom merges another estimator that was constructed with the
// same configuration and rng seed stream (identical hash functions)
// into e, making e reflect the union of the two streams. Counters are
// max-merged — valid because each counter stores a maximum of lsb
// levels, and max is associative/commutative/idempotent.
func (e *Estimator) MergeFrom(o *Estimator) {
	if e.kre != o.kre || e.logN != o.logN {
		panic("rough: merge of incompatible estimators")
	}
	for j := range e.subs {
		s, os := &e.subs[j], &o.subs[j]
		for i := range s.c {
			if os.c[i] > s.c[i] {
				lo := int(s.c[i]) + 1
				if lo < 0 {
					lo = 0
				}
				for r := lo; r <= int(os.c[i]); r++ {
					s.t[r]++
				}
				s.c[i] = os.c[i]
			}
		}
	}
}

// Reset returns the estimator to its freshly constructed state without
// redrawing hash functions (scratch-sketch reuse; see core.FastSketch.Reset).
func (e *Estimator) Reset() {
	for j := range e.subs {
		s := &e.subs[j]
		for i := range s.c {
			s.c[i] = -1
		}
		clear(s.t)
		s.r = -1
	}
}

// SpaceBits returns the structure's accounted space: counters
// (loglog n bits each would suffice; we charge the ⌈log2(logN+2)⌉ bits
// a packed representation needs), the maintained suffix counts, and
// hash seeds — O(log n) total as Theorem 1 requires (for the
// polynomial h3, O(K_RE·log K_RE) seed bits; tabulation is charged at
// its table size, see DESIGN.md §5(1)).
func (e *Estimator) SpaceBits() int {
	perCounter := int(bitutil.CeilLog2(uint64(e.logN) + 2))
	total := 0
	for j := range e.subs {
		s := &e.subs[j]
		total += e.kre * perCounter
		total += len(s.t) * 32
		total += s.h1.SeedBits() + s.h2.SeedBits() + s.h3.SeedBits()
	}
	return total
}

func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
