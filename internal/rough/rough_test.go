package rough

import (
	"math/rand"
	"testing"
)

func TestPaperKRE(t *testing.T) {
	// K_RE = max(8, log n / loglog n).
	if got := PaperKRE(32); got != 8 { // 32/5 = 6.4 → max with 8
		t.Errorf("PaperKRE(32)=%d want 8", got)
	}
	if got := PaperKRE(60); got != 10 { // 60/log2(60)≈10.2 → 10
		t.Errorf("PaperKRE(60)=%d want 10", got)
	}
	if got := PaperKRE(1); got != 8 {
		t.Errorf("PaperKRE(1)=%d want 8", got)
	}
}

func TestDefaultKREIsPow2AndAtLeast64(t *testing.T) {
	for _, logN := range []uint{8, 16, 32, 62} {
		k := DefaultKRE(logN)
		if k < 64 || k&(k-1) != 0 {
			t.Errorf("DefaultKRE(%d)=%d", logN, k)
		}
	}
}

func TestMedian3(t *testing.T) {
	cases := []struct{ a, b, c, want int }{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 3, 1, 2}, {5, 5, 5, 5},
		{-1, 0, 7, 0}, {7, -1, -1, -1}, {0, 0, 1, 0},
	}
	for _, c := range cases {
		if got := median3(c.a, c.b, c.c); got != c.want {
			t.Errorf("median3(%d,%d,%d)=%d want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestEmptyEstimateIsZero(t *testing.T) {
	e := New(Config{LogN: 32}, rand.New(rand.NewSource(40)))
	if got := e.Estimate(); got != 0 {
		t.Errorf("empty estimate = %d, want 0", got)
	}
}

func TestEstimateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e := New(Config{LogN: 32, Fast: true}, rng)
	prev := uint64(0)
	for i := 0; i < 200000; i++ {
		e.Update(rng.Uint64())
		if i%1000 == 0 {
			cur := e.Estimate()
			if cur < prev {
				t.Fatalf("estimate decreased: %d -> %d at i=%d", prev, cur, i)
			}
			prev = cur
		}
	}
}

// TestTheorem1AllTimes is experiment E2: with probability close to 1,
// F0(t) ≤ Est(t) ≤ 8·F0(t) simultaneously for every t with
// F0(t) ≥ K_RE. We run independent trials over a stream of fresh
// distinct items (so F0(t) = t) and require ≥ 90% of trials to satisfy
// the all-times guarantee at the library default K_RE.
func TestTheorem1AllTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	for _, fast := range []bool{false, true} {
		const trials = 40
		const streamLen = 1 << 15
		ok := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(100 + int64(trial)))
			e := New(Config{LogN: 32, Fast: fast}, rng)
			kre := uint64(e.KRE())
			good := true
			for i := uint64(1); i <= streamLen; i++ {
				e.Update(rng.Uint64()) // fresh random 64-bit keys: F0(t)=t whp
				if i >= kre && i%64 == 0 {
					est := e.Estimate()
					if est < i || est > 8*i {
						good = false
						break
					}
				}
			}
			if good {
				ok++
			}
		}
		if frac := float64(ok) / trials; frac < 0.9 {
			t.Errorf("fast=%v: all-times guarantee held in only %.2f of trials", fast, frac)
		}
	}
}

// TestConstantFactorAtCheckpoints verifies the per-point guarantee of
// Lemma 4 over a range of F0 magnitudes.
func TestConstantFactorAtCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New(Config{LogN: 32, Fast: true}, rng)
	n := uint64(0)
	for _, target := range []uint64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		for n < target {
			n++
			e.Update(n | n<<32) // distinct keys
		}
		est := e.Estimate()
		if est < n || est > 8*n {
			t.Errorf("F0=%d: estimate %d outside [F0, 8F0]", n, est)
		}
	}
}

func TestRepeatedItemsDoNotInflate(t *testing.T) {
	// F0 semantics: duplicates must not move the estimate.
	rng := rand.New(rand.NewSource(43))
	e := New(Config{LogN: 32, Fast: true}, rng)
	for i := uint64(0); i < 4096; i++ {
		e.Update(i)
	}
	before := e.Estimate()
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 4096; i++ {
			e.Update(i)
		}
	}
	if after := e.Estimate(); after != before {
		t.Errorf("duplicates changed estimate: %d -> %d", before, after)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	// Two same-seed estimators fed disjoint halves, merged, must equal
	// one estimator fed the whole stream.
	mk := func() *Estimator {
		return New(Config{LogN: 32, Fast: true}, rand.New(rand.NewSource(44)))
	}
	a, b, whole := mk(), mk(), mk()
	for i := uint64(0); i < 20000; i++ {
		key := i*2654435761 + 7
		whole.Update(key)
		if i%2 == 0 {
			a.Update(key)
		} else {
			b.Update(key)
		}
	}
	a.MergeFrom(b)
	if got, want := a.Estimate(), whole.Estimate(); got != want {
		t.Errorf("merged estimate %d != whole-stream estimate %d", got, want)
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	a := New(Config{LogN: 32, KRE: 64}, rand.New(rand.NewSource(1)))
	b := New(Config{LogN: 32, KRE: 128}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MergeFrom(b)
}

func TestSpaceIsLogarithmic(t *testing.T) {
	// Theorem 1: O(log n) bits. The counters+suffix-count+seed total for
	// the polynomial variant at LogN=32 must be far below, say, one
	// F0-sketch worth of ε⁻² bits for small ε, and must grow only
	// linearly in logN.
	s32 := New(Config{LogN: 32}, rand.New(rand.NewSource(2))).SpaceBits()
	s62 := New(Config{LogN: 62}, rand.New(rand.NewSource(2))).SpaceBits()
	if s62 > 3*s32 {
		t.Errorf("space grows too fast: %d -> %d", s32, s62)
	}
	if s32 > 1<<20 {
		t.Errorf("space unexpectedly large: %d bits", s32)
	}
}

func TestBadConfigPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cfg := range []Config{{LogN: 0}, {LogN: 63}, {LogN: 32, KRE: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg, rng)
		}()
	}
}

func TestPaperKREConfiguration(t *testing.T) {
	// The paper-exact K_RE must still give a working (if noisier)
	// estimator: within [F0, 8F0] at a fixed checkpoint in most trials.
	const trials = 30
	ok := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(500 + int64(trial)))
		e := New(Config{LogN: 32, KRE: PaperKRE(32), Fast: true}, rng)
		const n = 1 << 14
		for i := 0; i < n; i++ {
			e.Update(rng.Uint64())
		}
		if est := e.Estimate(); est >= n && est <= 8*n {
			ok++
		}
	}
	if ok < trials*6/10 {
		t.Errorf("paper K_RE: only %d/%d trials within [F0,8F0]", ok, trials)
	}
}

func BenchmarkUpdateFast(b *testing.B) {
	e := New(Config{LogN: 32, Fast: true}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i))
	}
}

func BenchmarkUpdateReference(b *testing.B) {
	e := New(Config{LogN: 32}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i))
	}
}

func BenchmarkEstimate(b *testing.B) {
	e := New(Config{LogN: 32, Fast: true}, rand.New(rand.NewSource(1)))
	for i := 0; i < 1<<16; i++ {
		e.Update(uint64(i))
	}
	var s uint64
	for i := 0; i < b.N; i++ {
		s += e.Estimate()
	}
	_ = s
}
