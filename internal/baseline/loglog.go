package baseline

import (
	"math"
	"math/bits"

	"repro/internal/hashfn"
)

// LogLog is Durand–Flajolet's algorithm [16] (Figure 1 row: "Assumes
// random oracle, additive error"): m registers of loglog n bits, each
// holding the maximum rank ρ(h(x)) = lsb position + 1 among keys
// routed to it, combined by a geometric mean:
//
//	Ẽ = α_m · m · 2^{(1/m)·Σ M_j}
//
// This is the structure whose "keep only the deepest row per column"
// observation KNW builds on (Section 1.1): the paper's counters C_j
// are exactly LogLog registers, re-based to offsets from b.
type LogLog struct {
	seed      uint64
	registers []uint8
	logM      uint
}

// NewLogLog returns a LogLog estimator with m registers (a power of
// two, ≥ 64 so the asymptotic α constant applies).
func NewLogLog(m int, seed uint64) *LogLog {
	if m < 64 || m&(m-1) != 0 {
		panic("baseline: LogLog m must be a power of two >= 64")
	}
	return &LogLog{
		seed:      seed,
		registers: make([]uint8, m),
		logM:      uint(bits.TrailingZeros64(uint64(m))),
	}
}

// logLogAlpha is the m→∞ constant a_m ≈ 0.39701 from the Durand–
// Flajolet analysis (their Theorem 1); for m ≥ 64 the finite-m
// correction is below 1e-4 and ignored, as in their own code.
const logLogAlpha = 0.39701

// Add implements F0Estimator.
func (l *LogLog) Add(key uint64) {
	h := hashfn.Mix64(key, l.seed)
	idx := h & (uint64(len(l.registers)) - 1)
	rank := uint8(bits.TrailingZeros64(h>>l.logM|1<<60) + 1)
	if rank > l.registers[idx] {
		l.registers[idx] = rank
	}
}

// Estimate implements F0Estimator.
func (l *LogLog) Estimate() float64 {
	sum := 0
	for _, r := range l.registers {
		sum += int(r)
	}
	m := float64(len(l.registers))
	return logLogAlpha * m * math.Exp2(float64(sum)/m)
}

// SpaceBits charges 6 bits per register (ranks ≤ 64) plus the seed —
// the ε⁻²·loglog n profile of Figure 1.
func (l *LogLog) SpaceBits() int { return 6*len(l.registers) + 64 }

// Name implements F0Estimator.
func (l *LogLog) Name() string { return "LogLog" }
