package baseline

import (
	"math"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// BJKST is Bar-Yossef et al.'s Algorithm II [4] (Figure 1 row with
// O(ε⁻²·loglog n + …) space): maintain the set S of (fingerprint,
// level) pairs for items whose subsampling level lsb(h1(x)) is at
// least a threshold z; when |S| exceeds the capacity c/ε², increment z
// and evict shallower items. The estimate is |S|·2^z.
//
// Storing short fingerprints g(x) instead of full identifiers is what
// brings the per-item cost from log n down to O(log 1/ε + loglog n)
// bits — the idea KNW push to its limit with bit-packed offset
// counters.
type BJKST struct {
	h1   *hashfn.TwoWise // level hash
	g    *hashfn.TwoWise // fingerprint hash
	cap  int
	z    int
	s    map[uint64]int // fingerprint → deepest level seen
	logN uint
}

// NewBJKST returns an Algorithm II estimator with capacity cap
// (≈ 576/ε² in [4]'s analysis; smaller constants work in practice and
// E1 reports both).
func NewBJKST(cap int, logN uint, rng *rand.Rand) *BJKST {
	if cap < 2 {
		panic("baseline: BJKST needs capacity >= 2")
	}
	return &BJKST{
		h1:   hashfn.NewTwoWise(rng, 1),
		g:    hashfn.NewTwoWise(rng, 1),
		cap:  cap,
		s:    make(map[uint64]int, cap+1),
		logN: logN,
	}
}

// Add implements F0Estimator.
func (b *BJKST) Add(key uint64) {
	lvl := int(bitutil.LSB(b.h1.HashField(key)&bitutil.Mask(b.logN), b.logN))
	if lvl < b.z {
		return
	}
	// Fingerprint of O(log(cap) + loglog n) bits; we keep 32 bits,
	// comfortably above the birthday bound for any practical cap.
	fp := b.g.HashField(key) & (1<<32 - 1)
	if old, ok := b.s[fp]; !ok || lvl > old {
		b.s[fp] = lvl
	}
	for len(b.s) > b.cap {
		b.z++
		for f, l := range b.s {
			if l < b.z {
				delete(b.s, f)
			}
		}
	}
}

// Estimate implements F0Estimator.
func (b *BJKST) Estimate() float64 {
	return float64(len(b.s)) * math.Exp2(float64(b.z))
}

// SpaceBits charges each stored pair at 32 fingerprint bits plus a
// loglog n level, plus seeds — the Figure 1 profile.
func (b *BJKST) SpaceBits() int {
	perItem := 32 + int(bitutil.CeilLog2(uint64(b.logN)+2))
	return perItem*len(b.s) + b.h1.SeedBits() + b.g.SeedBits()
}

// Name implements F0Estimator.
func (b *BJKST) Name() string { return "BJKST-II" }
