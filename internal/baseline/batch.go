package baseline

// Batched ingestion for the comparators. The baselines keep their
// published per-key algorithms — the batch surface exists so the
// experiment harness can sweep every estimator (KNW and prior art)
// through the same batched pipeline; none of these structures has a
// deamortized phase to amortize, so a plain replay loop is already the
// honest implementation.

// AddBatch records the keys as sequential Add calls.
func (e *Exact) AddBatch(keys []uint64) {
	for _, k := range keys {
		e.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (f *FM85) AddBatch(keys []uint64) {
	for _, k := range keys {
		f.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (a *AMS) AddBatch(keys []uint64) {
	for _, k := range keys {
		a.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (g *GT) AddBatch(keys []uint64) {
	for _, k := range keys {
		g.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (k *KMV) AddBatch(keys []uint64) {
	for _, key := range keys {
		k.Add(key)
	}
}

// AddBatch records the keys as sequential Add calls.
func (b *BJKST) AddBatch(keys []uint64) {
	for _, k := range keys {
		b.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (l *LogLog) AddBatch(keys []uint64) {
	for _, k := range keys {
		l.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (h *HyperLogLog) AddBatch(keys []uint64) {
	for _, k := range keys {
		h.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (l *LinearCounting) AddBatch(keys []uint64) {
	for _, k := range keys {
		l.Add(k)
	}
}

// AddBatch records the keys as sequential Add calls.
func (g *GangulyL0) AddBatch(keys []uint64) {
	for _, k := range keys {
		g.Add(k)
	}
}

// UpdateBatch applies the updates as sequential Update calls. A nil
// deltas slice means every delta is +1.
func (g *GangulyL0) UpdateBatch(keys []uint64, deltas []int64) {
	if deltas == nil {
		g.AddBatch(keys)
		return
	}
	if len(deltas) != len(keys) {
		panic("baseline: UpdateBatch length mismatch")
	}
	for i, k := range keys {
		g.Update(k, deltas[i])
	}
}

// Compile-time conformance of every comparator to the batched
// estimator interface.
var (
	_ F0Estimator = (*Exact)(nil)
	_ F0Estimator = (*FM85)(nil)
	_ F0Estimator = (*AMS)(nil)
	_ F0Estimator = (*GT)(nil)
	_ F0Estimator = (*KMV)(nil)
	_ F0Estimator = (*BJKST)(nil)
	_ F0Estimator = (*LogLog)(nil)
	_ F0Estimator = (*HyperLogLog)(nil)
	_ F0Estimator = (*LinearCounting)(nil)
	_ F0Estimator = (*GangulyL0)(nil)
)
