package baseline

import (
	"math"
	"math/bits"

	"repro/internal/hashfn"
)

// HyperLogLog is Flajolet–Fusy–Gandouet–Meunier [19] (Figure 1 row:
// "Assumes random oracle, additive error") — the estimator deployed
// everywhere in practice. Registers are as in LogLog; the combiner is
// the bias-corrected harmonic mean
//
//	Ẽ = α_m · m² / Σ_j 2^{−M_j}
//
// with the standard small-range correction (linear counting on empty
// registers when Ẽ ≤ 5m/2). Its standard error is 1.04/√m — the
// constant-factor yardstick every F0 sketch is measured against in
// experiment E1.
type HyperLogLog struct {
	seed      uint64
	registers []uint8
	logM      uint
}

// NewHyperLogLog returns an HLL with m registers (a power of two ≥ 128
// so the closed-form α_m applies).
func NewHyperLogLog(m int, seed uint64) *HyperLogLog {
	if m < 128 || m&(m-1) != 0 {
		panic("baseline: HyperLogLog m must be a power of two >= 128")
	}
	return &HyperLogLog{
		seed:      seed,
		registers: make([]uint8, m),
		logM:      uint(bits.TrailingZeros64(uint64(m))),
	}
}

// Add implements F0Estimator.
func (h *HyperLogLog) Add(key uint64) {
	v := hashfn.Mix64(key, h.seed)
	idx := v & (uint64(len(h.registers)) - 1)
	rank := uint8(bits.TrailingZeros64(v>>h.logM|1<<60) + 1)
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate implements F0Estimator.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.registers))
	alpha := 0.7213 / (1 + 1.079/m)
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting on empty registers.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// SpaceBits charges 6 bits per register plus the seed.
func (h *HyperLogLog) SpaceBits() int { return 6*len(h.registers) + 64 }

// Name implements F0Estimator.
func (h *HyperLogLog) Name() string { return "HyperLogLog" }

// MForEpsilon returns the register count giving standard error ε
// (1.04/√m = ε), rounded up to a power of two and floored at 128.
func MForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.05
	}
	m := 1
	for float64(m) < (1.04/eps)*(1.04/eps) {
		m <<= 1
	}
	if m < 128 {
		m = 128
	}
	return m
}
