// Package baseline implements the prior distinct-elements algorithms
// the paper compares against in Figure 1, plus an exact counter and a
// Ganguly-style L0 comparator (Section 4's prior art). These are the
// comparators for experiment E1: each implements the same F0Estimator
// interface as the KNW sketches so the harness can sweep them
// uniformly over workloads and report measured space and update time.
//
// Figure 1 rows and where they live here:
//
//	[20] Flajolet–Martin (PCSA)            → FM85        (random oracle)
//	[3]  Alon–Matias–Szegedy               → AMS         (constant ε)
//	[24] Gibbons–Tirthapura                → GT          (O(ε⁻² log n))
//	[4]  Bar-Yossef et al. Algorithm I     → KMV         (k minimum values)
//	[4]  Bar-Yossef et al. Algorithm II    → BJKST       (fingerprints + level)
//	[16] Durand–Flajolet LogLog            → LogLog      (random oracle)
//	[17] Estan–Varghese–Fisk bitmaps       → LinearCounting (random oracle)
//	[19] HyperLogLog                       → HyperLogLog (random oracle)
//	[22] Ganguly (L0, deletions)           → GangulyL0
//
// The "random oracle" rows are implemented with a seeded 64-bit
// avalanche mixer, exactly as those papers' authors did in practice
// (DESIGN.md §5(5)). Rows we cannot faithfully reproduce at all are
// not faked: [5] and [6] describe algorithms whose behaviour is
// dominated by the same ε⁻²·log n storage as KMV/GT and are covered by
// those rows in the space table.
package baseline

// F0Estimator is the uniform interface the experiment harness drives.
// It mirrors the public knw.Estimator interface, so the KNW sketches
// and every comparator here can be swept through the same scalar or
// batched pipeline.
type F0Estimator interface {
	// Add processes one stream element.
	Add(key uint64)
	// AddBatch processes the keys as if Add were called on each in
	// order; implementations may amortize per-call overhead.
	AddBatch(keys []uint64)
	// Estimate returns the current F̃0.
	Estimate() float64
	// SpaceBits returns the accounted size of the structure's state.
	SpaceBits() int
	// Name identifies the algorithm in tables.
	Name() string
}

// Exact counts distinct elements exactly with a hash set — the ground
// truth for small streams and the "linear space" row every sketch is
// compared against ([3] proves Ω(n) bits are necessary for exactness).
type Exact struct {
	seen map[uint64]struct{}
}

// NewExact returns an exact counter.
func NewExact() *Exact { return &Exact{seen: make(map[uint64]struct{})} }

// Add inserts the key.
func (e *Exact) Add(key uint64) { e.seen[key] = struct{}{} }

// Estimate returns the exact count.
func (e *Exact) Estimate() float64 { return float64(len(e.seen)) }

// SpaceBits charges 64 bits per stored key (ignoring map overhead,
// which only helps the sketches by comparison).
func (e *Exact) SpaceBits() int { return 64 * len(e.seen) }

// Name implements F0Estimator.
func (e *Exact) Name() string { return "Exact" }

// Count returns the exact count as an int.
func (e *Exact) Count() int { return len(e.seen) }
