package baseline

import (
	"math"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// GT is Gibbons–Tirthapura coordinated sampling [24] (Figure 1 row:
// O(ε⁻² log n) space, O(ε⁻²) update as stated there): keep the full
// identifiers of items whose level lsb(h(x)) ≥ z, halving the sample
// (z++) whenever it exceeds t; estimate |S|·2^z. Unlike BJKST it
// stores whole log n-bit identifiers, which is exactly the ε⁻²·log n
// space product Figure 1 charges it.
type GT struct {
	h    *hashfn.TwoWise
	t    int
	z    int
	s    map[uint64]int // key → level
	logN uint
}

// NewGT returns a Gibbons–Tirthapura estimator with sample bound t
// (≈ 36/ε² in their analysis).
func NewGT(t int, logN uint, rng *rand.Rand) *GT {
	if t < 2 {
		panic("baseline: GT needs t >= 2")
	}
	return &GT{
		h:    hashfn.NewTwoWise(rng, 1),
		t:    t,
		s:    make(map[uint64]int, t+1),
		logN: logN,
	}
}

// Add implements F0Estimator.
func (g *GT) Add(key uint64) {
	lvl := int(bitutil.LSB(g.h.HashField(key)&bitutil.Mask(g.logN), g.logN))
	if lvl < g.z {
		return
	}
	g.s[key] = lvl
	for len(g.s) > g.t {
		g.z++
		for k, l := range g.s {
			if l < g.z {
				delete(g.s, k)
			}
		}
	}
}

// Estimate implements F0Estimator.
func (g *GT) Estimate() float64 {
	return float64(len(g.s)) * math.Exp2(float64(g.z))
}

// SpaceBits charges log n bits per stored identifier plus its level
// and the seed.
func (g *GT) SpaceBits() int {
	perItem := int(g.logN) + int(bitutil.CeilLog2(uint64(g.logN)+2))
	return perItem*len(g.s) + g.h.SeedBits()
}

// Name implements F0Estimator.
func (g *GT) Name() string { return "Gibbons-Tirthapura" }
