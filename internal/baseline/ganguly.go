package baseline

import (
	"math/rand"

	"repro/internal/ballsbins"
	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// GangulyL0 is a faithful-in-spirit implementation of Ganguly's
// distinct-items-over-update-streams estimator [22], the prior art the
// paper's L0 algorithm improves on (Section 1: his algorithm needed
// O(ε⁻²·log n·log mM) bits and O(log 1/ε) update time, and required
// nonnegative frequencies; see DESIGN.md §5(4) for the substitution
// rationale).
//
// Structure: geometric sampling levels 0..log n; an item of level
// lsb(h(x)) = ℓ is recorded at every level ≤ ℓ (cumulative sampling,
// expected 2 cells touched per update). Each level holds s cells;
// a cell tracks the full (unreduced) aggregates
//
//	cnt = Σ v,   sum = Σ v·key,   sum2 = Σ v·key² (mod 2^64)
//
// whose widths are the log(mM)-factor in his space bound. The estimate
// inverts cell occupancy at the deepest level whose occupancy is in
// the reliable band — Ganguly's singleton tests (sum² = cnt·sum2
// recovers isolated items) are implemented and exposed, but occupancy
// inversion is what the E7 comparison exercises.
type GangulyL0 struct {
	h1   *hashfn.TwoWise
	h2   *hashfn.TwoWise
	s    int
	logN uint
	// cells[level][cell]{cnt,sum,sum2}; nz[level] is the occupancy.
	cnt  [][]int64
	sum  [][]uint64
	sum2 [][]uint64
	nz   []int
}

// NewGangulyL0 returns an estimator with s cells per level.
func NewGangulyL0(s int, logN uint, rng *rand.Rand) *GangulyL0 {
	if s < 32 || !bitutil.IsPow2(uint64(s)) {
		panic("baseline: GangulyL0 needs a power-of-two s >= 32")
	}
	levels := int(logN) + 1
	g := &GangulyL0{
		h1:   hashfn.NewTwoWise(rng, 1),
		h2:   hashfn.NewTwoWise(rng, uint64(s)),
		s:    s,
		logN: logN,
		cnt:  make([][]int64, levels),
		sum:  make([][]uint64, levels),
		sum2: make([][]uint64, levels),
		nz:   make([]int, levels),
	}
	for l := range g.cnt {
		g.cnt[l] = make([]int64, s)
		g.sum[l] = make([]uint64, s)
		g.sum2[l] = make([]uint64, s)
	}
	return g
}

// Update processes the turnstile update x_key ← x_key + v.
func (g *GangulyL0) Update(key uint64, v int64) {
	if v == 0 {
		return
	}
	lvl := int(bitutil.LSB(g.h1.HashField(key)&bitutil.Mask(g.logN), g.logN))
	c := int(g.h2.Hash(key))
	uv := uint64(v)
	for l := 0; l <= lvl && l < len(g.cnt); l++ {
		wasZero := g.cnt[l][c] == 0 && g.sum[l][c] == 0 && g.sum2[l][c] == 0
		g.cnt[l][c] += v
		g.sum[l][c] += uv * key
		g.sum2[l][c] += uv * key * key
		isZero := g.cnt[l][c] == 0 && g.sum[l][c] == 0 && g.sum2[l][c] == 0
		switch {
		case wasZero && !isZero:
			g.nz[l]++
		case !wasZero && isZero:
			g.nz[l]--
		}
	}
}

// Add implements insert-only streams (F0 semantics) so GangulyL0 can
// ride the common harness.
func (g *GangulyL0) Add(key uint64) { g.Update(key, 1) }

// IsSingleton reports Ganguly's cell test at (level, cell): a cell
// holding exactly one item with frequency f satisfies
// sum² = cnt·sum2 (both equal f²·key²·… in exact arithmetic; we use
// wrapping 64-bit arithmetic, giving a false positive probability
// ~2⁻⁶⁴ per cell).
func (g *GangulyL0) IsSingleton(level, cell int) bool {
	c := g.cnt[level][cell]
	if c == 0 {
		return false
	}
	return g.sum[level][cell]*g.sum[level][cell] == uint64(c)*g.sum2[level][cell]
}

// Estimate inverts cell occupancy at the deepest level whose occupancy
// is within the reliable band [s/64, s/2], scaled by the level's
// cumulative sampling rate 2^ℓ.
func (g *GangulyL0) Estimate() float64 {
	for l := len(g.nz) - 1; l >= 0; l-- {
		if g.nz[l] >= g.s/64 && g.nz[l] <= g.s/2 {
			return ballsbins.Invert(g.nz[l], g.s) * float64(uint64(1)<<uint(l))
		}
	}
	// Sparse stream: level 0 sees everything; occupancy inversion is
	// exact enough even below the band.
	if g.nz[0] < g.s {
		return ballsbins.Invert(g.nz[0], g.s)
	}
	return float64(g.s) // saturated everywhere (cannot happen with the band check)
}

// SpaceBits charges each cell its three 64-bit aggregates — the
// log(mM)-wide counters of [22] — plus seeds.
func (g *GangulyL0) SpaceBits() int {
	return len(g.cnt)*g.s*3*64 + g.h1.SeedBits() + g.h2.SeedBits()
}

// Name implements F0Estimator.
func (g *GangulyL0) Name() string { return "Ganguly-L0" }
