package baseline

import (
	"math"
	"math/rand"
	"testing"
)

func TestExact(t *testing.T) {
	e := NewExact()
	for i := 0; i < 1000; i++ {
		e.Add(uint64(i % 100))
	}
	if e.Estimate() != 100 || e.Count() != 100 {
		t.Errorf("exact: %v", e.Estimate())
	}
	if e.SpaceBits() != 6400 {
		t.Errorf("SpaceBits=%d", e.SpaceBits())
	}
	if e.Name() == "" {
		t.Error("empty name")
	}
}

// estimators returns every baseline configured for roughly ε = 0.1
// accuracy at F0 up to ~1e6, keyed by name.
func estimators(rng *rand.Rand) []F0Estimator {
	return []F0Estimator{
		NewFM85(64, rng.Uint64()),
		NewAMS(9, 32, rng),
		NewKMV(TForEpsilon(0.1)/8, rng), // /8: the paper constant is very loose
		NewBJKST(2048, 32, rng),
		NewGT(2048, 32, rng),
		NewLogLog(1024, rng.Uint64()),
		NewHyperLogLog(MForEpsilon(0.1), rng.Uint64()),
		NewGangulyL0(4096, 32, rng),
	}
}

// TestAllBaselinesReasonable drives every baseline over the same
// stream and requires each to land within its documented error class:
// constant-factor for AMS/FM85, (1±~0.15) for the ε-parameterized ones.
func TestAllBaselinesReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	ests := estimators(rng)
	const f0 = 200000
	data := rand.New(rand.NewSource(701))
	keys := make([]uint64, f0)
	for i := range keys {
		keys[i] = data.Uint64()
	}
	for rep := 0; rep < 2; rep++ { // duplicates must not matter
		for _, k := range keys {
			for _, e := range ests {
				e.Add(k)
			}
		}
	}
	for _, e := range ests {
		got := e.Estimate()
		rel := math.Abs(got-f0) / f0
		limit := 0.2
		switch e.Name() {
		case "AMS", "FM85-PCSA":
			limit = 2.0 // constant-factor algorithms
		case "Ganguly-L0":
			limit = 0.5
		}
		if rel > limit {
			t.Errorf("%s: estimate %v for F0=%d (rel %.3f > %.2f)", e.Name(), got, f0, rel, limit)
		}
		if e.SpaceBits() <= 0 {
			t.Errorf("%s: non-positive SpaceBits", e.Name())
		}
	}
}

func TestSmallStreamsExactPaths(t *testing.T) {
	// KMV, BJKST, GT answer exactly while below capacity.
	rng := rand.New(rand.NewSource(702))
	kmv := NewKMV(1000, rng)
	bj := NewBJKST(1000, 32, rng)
	gt := NewGT(1000, 32, rng)
	for i := 0; i < 500; i++ {
		k := rng.Uint64()
		kmv.Add(k)
		bj.Add(k)
		gt.Add(k)
	}
	if kmv.Estimate() != 500 {
		t.Errorf("KMV below capacity: %v", kmv.Estimate())
	}
	if bj.Estimate() != 500 {
		t.Errorf("BJKST below capacity: %v", bj.Estimate())
	}
	if gt.Estimate() != 500 {
		t.Errorf("GT below capacity: %v", gt.Estimate())
	}
}

func TestLinearCountingAccuracyAndSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	lc := NewLinearCounting(1<<16, rng.Uint64())
	const f0 = 10000
	for i := 0; i < f0; i++ {
		lc.Add(rng.Uint64())
	}
	if rel := math.Abs(lc.Estimate()-f0) / f0; rel > 0.05 {
		t.Errorf("LinearCounting rel error %.3f", rel)
	}
	// Saturate.
	for i := 0; i < 3_000_000; i++ {
		lc.Add(rng.Uint64())
	}
	if !math.IsInf(lc.Estimate(), 1) && lc.Estimate() < 1e5 {
		t.Errorf("saturated bitmap should blow up, got %v", lc.Estimate())
	}
}

func TestBJKSTLevelsAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	b := NewBJKST(64, 32, rng)
	for i := 0; i < 100000; i++ {
		b.Add(rng.Uint64())
	}
	if b.z == 0 {
		t.Error("BJKST never raised its level despite overflow")
	}
	if len(b.s) > 64 {
		t.Errorf("BJKST capacity violated: %d", len(b.s))
	}
}

func TestGTSampleBound(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	g := NewGT(128, 32, rng)
	for i := 0; i < 100000; i++ {
		g.Add(rng.Uint64())
	}
	if len(g.s) > 128 {
		t.Errorf("GT sample bound violated: %d", len(g.s))
	}
}

func TestGangulyDeletions(t *testing.T) {
	rng := rand.New(rand.NewSource(706))
	g := NewGangulyL0(4096, 32, rng)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = rng.Uint64()
		g.Update(keys[i], 3)
	}
	for i := 0; i < 40000; i++ {
		g.Update(keys[i], -3)
	}
	const live = 10000
	if rel := math.Abs(g.Estimate()-live) / live; rel > 0.5 {
		t.Errorf("Ganguly after deletions: %v (rel %.3f)", g.Estimate(), rel)
	}
}

func TestGangulySingletonDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	g := NewGangulyL0(4096, 32, rng)
	key := rng.Uint64() | 1
	g.Update(key, 5)
	cell := int(g.h2.Hash(key))
	if !g.IsSingleton(0, cell) {
		t.Error("single item not detected as singleton")
	}
	// A second item in the same cell should (almost surely) break the test.
	var other uint64
	for {
		other = rng.Uint64()
		if other != key && int(g.h2.Hash(other)) == cell {
			break
		}
	}
	g.Update(other, 2)
	if g.IsSingleton(0, cell) {
		t.Error("two-item cell passed the singleton test")
	}
}

func TestConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(708))
	for _, f := range []func(){
		func() { NewFM85(63, 1) },
		func() { NewAMS(0, 32, rng) },
		func() { NewKMV(1, rng) },
		func() { NewBJKST(1, 32, rng) },
		func() { NewGT(1, 32, rng) },
		func() { NewLogLog(32, 1) },
		func() { NewHyperLogLog(64, 1) },
		func() { NewLinearCounting(1, 1) },
		func() { NewGangulyL0(33, 32, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMForEpsilonAndTForEpsilon(t *testing.T) {
	if m := MForEpsilon(0.05); m < 128 || m&(m-1) != 0 || float64(m) < (1.04/0.05)*(1.04/0.05) {
		t.Errorf("MForEpsilon(0.05)=%d", m)
	}
	if got := TForEpsilon(0.1); got < 9600 || got > 9601 { // 96/ε² ± float rounding
		t.Errorf("TForEpsilon(0.1)=%d", got)
	}
}

func BenchmarkAdds(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, e := range estimators(rng) {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Add(uint64(i) * 2654435761)
			}
		})
	}
}
