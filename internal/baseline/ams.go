package baseline

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// AMS is the Alon–Matias–Szegedy F0 estimator [3] (Figure 1 row 2):
// O(log n) bits, O(log n) update time as originally stated, and only a
// constant-factor approximation (the paper proves a c-approximation
// with c > 2 using pairwise independence — no random oracle needed).
//
// Each copy tracks R = max lsb(h(x)) over the stream with a pairwise-
// independent h and estimates 2^{R + 1/2}; the median of copies is
// reported. AMS is the baseline KNW's RoughEstimator should be
// compared to: same space regime, but AMS's guarantee holds per point,
// not at all points simultaneously.
type AMS struct {
	hs   []*hashfn.TwoWise
	r    []int
	logN uint
}

// NewAMS returns an AMS estimator with the given number of independent
// copies (odd; the median is reported).
func NewAMS(copies int, logN uint, rng *rand.Rand) *AMS {
	if copies < 1 {
		panic("baseline: AMS needs at least one copy")
	}
	a := &AMS{hs: make([]*hashfn.TwoWise, copies), r: make([]int, copies), logN: logN}
	for i := range a.hs {
		a.hs[i] = hashfn.NewTwoWise(rng, 1)
		a.r[i] = -1
	}
	return a
}

// Add implements F0Estimator.
func (a *AMS) Add(key uint64) {
	mask := bitutil.Mask(a.logN)
	for i, h := range a.hs {
		if r := int(bitutil.LSB(h.HashField(key)&mask, a.logN)); r > a.r[i] {
			a.r[i] = r
		}
	}
}

// Estimate implements F0Estimator.
func (a *AMS) Estimate() float64 {
	rs := append([]int(nil), a.r...)
	sort.Ints(rs)
	med := rs[len(rs)/2]
	if med < 0 {
		return 0
	}
	return math.Exp2(float64(med) + 0.5)
}

// SpaceBits charges each copy's max-rank register and hash seed.
func (a *AMS) SpaceBits() int {
	perCopy := int(bitutil.CeilLog2(uint64(a.logN)+2)) + a.hs[0].SeedBits()
	return perCopy * len(a.hs)
}

// Name implements F0Estimator.
func (a *AMS) Name() string { return "AMS" }
