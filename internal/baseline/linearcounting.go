package baseline

import (
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// LinearCounting is the bitmap scheme of Estan–Varghese–Fisk [17]
// (Figure 1 row: O(ε⁻² log n) space, random oracle): hash each key to
// one of m bits, set it, and invert the occupancy:
//
//	Ẽ = m · ln(m / empty)
//
// It is the same balls-and-bins inversion KNW's estimator uses
// (Figure 3 step 7 with b = 0), which is why it is extremely accurate
// while F0 = O(m) and useless beyond — the regime KNW escapes by
// subsampling. Estan et al. scale the bitmap (their "multiscale
// bitmap") to cover larger ranges; the plain bitmap here is the
// building block whose behaviour E1 contrasts.
type LinearCounting struct {
	seed uint64
	bv   *bitutil.BitVector
}

// NewLinearCounting returns a bitmap of m bits.
func NewLinearCounting(m int, seed uint64) *LinearCounting {
	if m < 2 {
		panic("baseline: LinearCounting needs at least 2 bits")
	}
	return &LinearCounting{seed: seed, bv: bitutil.NewBitVector(m)}
}

// Add implements F0Estimator.
func (l *LinearCounting) Add(key uint64) {
	h := hashfn.Mix64(key, l.seed)
	hi, _ := bits.Mul64(h, uint64(l.bv.Len()))
	l.bv.Set(int(hi))
}

// Estimate implements F0Estimator. A saturated bitmap returns +Inf.
func (l *LinearCounting) Estimate() float64 {
	m := l.bv.Len()
	empty := m - l.bv.Count()
	if empty == 0 {
		return math.Inf(1)
	}
	return float64(m) * math.Log(float64(m)/float64(empty))
}

// SpaceBits charges the bitmap plus the seed.
func (l *LinearCounting) SpaceBits() int { return l.bv.SpaceBits() + 64 }

// Name implements F0Estimator.
func (l *LinearCounting) Name() string { return "LinearCounting" }
