package baseline

import (
	"math"
	"math/bits"

	"repro/internal/hashfn"
)

// FM85 is Flajolet–Martin probabilistic counting with stochastic
// averaging (PCSA) [20] — the 1983/85 algorithm that opened the field
// and the first row of Figure 1: O(log n) bits per bitmap, constant ε,
// and an assumed random oracle (our seeded mixer).
//
// Each of m bitmaps records which ranks lsb(h(x)) have been seen among
// the keys routed to it; the estimate combines the mean position of
// the lowest unset bit across bitmaps with the magic correction
// φ = 0.77351.
type FM85 struct {
	seed    uint64
	bitmaps []uint64
}

// fm85Phi is the correction constant from Flajolet–Martin's analysis.
const fm85Phi = 0.77351

// NewFM85 returns a PCSA structure with m bitmaps (m must be a power
// of two; 64 is the classic choice).
func NewFM85(m int, seed uint64) *FM85 {
	if m < 1 || m&(m-1) != 0 {
		panic("baseline: FM85 m must be a power of two")
	}
	return &FM85{seed: seed, bitmaps: make([]uint64, m)}
}

// Add implements F0Estimator.
func (f *FM85) Add(key uint64) {
	h := hashfn.Mix64(key, f.seed)
	m := uint64(len(f.bitmaps))
	idx := h & (m - 1)
	rest := h >> uint(bits.TrailingZeros64(m)) // remaining bits after routing
	rank := bits.TrailingZeros64(rest)
	if rank > 63 {
		rank = 63
	}
	f.bitmaps[idx] |= 1 << uint(rank)
}

// Estimate implements F0Estimator.
func (f *FM85) Estimate() float64 {
	m := len(f.bitmaps)
	sum := 0
	for _, bm := range f.bitmaps {
		// Position of the lowest zero bit = trailing ones count.
		sum += bits.TrailingZeros64(^bm)
	}
	mean := float64(sum) / float64(m)
	return float64(m) / fm85Phi * math.Exp2(mean)
}

// SpaceBits charges the bitmaps plus the mixer seed.
func (f *FM85) SpaceBits() int { return 64*len(f.bitmaps) + 64 }

// Name implements F0Estimator.
func (f *FM85) Name() string { return "FM85-PCSA" }
