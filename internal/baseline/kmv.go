package baseline

import (
	"container/heap"
	"math/rand"

	"repro/internal/hashfn"
)

// KMV is the k-minimum-values estimator in the style of Bar-Yossef et
// al.'s Algorithm I [4] and Beyer et al. [6] (Figure 1 rows with
// O(ε⁻² log n) space and O(log 1/ε) update): keep the t smallest
// pairwise-independent hash values seen; if the t-th smallest is v
// (as a fraction of the hash range), estimate F̃0 = (t − 1)/v.
//
// Space is t·log n bits — the ε⁻²·log n product KNW's bit-packed
// offsets eliminate — making KMV the clearest foil for experiment E1's
// space table. Update is O(log t) via a max-heap (a treap or lazy
// buffer reaches O(log 1/ε) amortized as in [4]; the heap's constant
// is irrelevant to the space comparison).
type KMV struct {
	h    *hashfn.TwoWise
	t    int
	heap maxHeap // the t smallest values seen, max at the root
	seen map[uint64]struct{}
}

// NewKMV returns a KMV estimator keeping t minimum values
// (t ≈ 96/ε² gives (1±ε) with constant probability, [4] Theorem 2).
func NewKMV(t int, rng *rand.Rand) *KMV {
	if t < 2 {
		panic("baseline: KMV needs t >= 2")
	}
	return &KMV{
		h:    hashfn.NewTwoWise(rng, 1),
		t:    t,
		seen: make(map[uint64]struct{}, t),
	}
}

// TForEpsilon returns the [4]-prescribed t = ⌈96/ε²⌉.
func TForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.05
	}
	return int(96/(eps*eps)) + 1
}

// Add implements F0Estimator.
func (k *KMV) Add(key uint64) {
	v := k.h.HashField(key)
	if len(k.heap) >= k.t && v >= k.heap[0] {
		return
	}
	if _, dup := k.seen[v]; dup {
		return
	}
	k.seen[v] = struct{}{}
	heap.Push(&k.heap, v)
	if len(k.heap) > k.t {
		old := heap.Pop(&k.heap).(uint64)
		delete(k.seen, old)
	}
}

// Estimate implements F0Estimator.
func (k *KMV) Estimate() float64 {
	if len(k.heap) < k.t {
		return float64(len(k.heap)) // fewer than t distinct: exact
	}
	vt := float64(k.heap[0]) / float64(uint64(1)<<61-1)
	return float64(k.t-1) / vt
}

// SpaceBits charges log n = 61 bits per stored value plus the seed.
func (k *KMV) SpaceBits() int { return 61*len(k.heap) + k.h.SeedBits() }

// Name implements F0Estimator.
func (k *KMV) Name() string { return "KMV(BJKST-I)" }

// maxHeap is a max-heap of uint64 hash values.
type maxHeap []uint64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
