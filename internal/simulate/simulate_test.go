package simulate

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/stream"
)

func TestRunF0Basics(t *testing.T) {
	e := baseline.NewExact()
	s := stream.NewUniform(1000, 3000, 1)
	r := RunF0(e, s)
	if r.Truth != 1000 || r.Estimate != 1000 || r.RelErr != 0 {
		t.Errorf("exact run: %+v", r)
	}
	if r.Updates != 3000 {
		t.Errorf("updates %d", r.Updates)
	}
	if r.Algorithm != "Exact" || !strings.Contains(r.Workload, "uniform") {
		t.Errorf("labels: %q %q", r.Algorithm, r.Workload)
	}
	if r.NsPerUpdate < 0 {
		t.Errorf("negative latency")
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	agg := RunTrials(5,
		func(trial int) baseline.F0Estimator {
			return baseline.NewHyperLogLog(1024, uint64(trial))
		},
		func(trial int) stream.F0Stream {
			return stream.NewUniform(20000, 20000, int64(trial))
		})
	if agg.Trials != 5 || agg.Failures != 0 {
		t.Fatalf("agg: %+v", agg)
	}
	if agg.RMSRelErr <= 0 || agg.RMSRelErr > 0.2 {
		t.Errorf("rms %v", agg.RMSRelErr)
	}
	if agg.MaxAbsRel < agg.RMSRelErr {
		t.Errorf("max %v < rms %v", agg.MaxAbsRel, agg.RMSRelErr)
	}
	if agg.MeanBits <= 0 {
		t.Errorf("bits %v", agg.MeanBits)
	}
}

func TestRunTrialsCountsFailures(t *testing.T) {
	// A saturated LinearCounting bitmap reports +Inf: the aggregate
	// must count it as a failure, not poison the stats.
	agg := RunTrials(3,
		func(trial int) baseline.F0Estimator {
			return baseline.NewLinearCounting(64, uint64(trial))
		},
		func(trial int) stream.F0Stream {
			return stream.NewUniform(10000, 10000, int64(trial))
		})
	if agg.Failures != 3 {
		t.Errorf("expected all trials to fail (saturated bitmap), got %d", agg.Failures)
	}
	if agg.RMSRelErr != 0 {
		t.Errorf("stats should be zero when all trials failed: %+v", agg)
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Result{{
		Algorithm: "X", Workload: "w", Truth: 100, Estimate: 90,
		RelErr: -0.1, SpaceBits: 1234, NsPerUpdate: 5.5, Updates: 100,
	}}
	out := FormatTable(rows)
	for _, want := range []string{"algorithm", "X", "1234", "-10.000%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatAggregatesSorted(t *testing.T) {
	out := FormatAggregates([]Aggregate{
		{Algorithm: "worse", RMSRelErr: 0.5, Trials: 1},
		{Algorithm: "better", RMSRelErr: 0.1, Trials: 1},
	})
	if strings.Index(out, "better") > strings.Index(out, "worse") {
		t.Errorf("not sorted by error:\n%s", out)
	}
}

func TestMeasureLatency(t *testing.T) {
	e := baseline.NewHyperLogLog(256, 9)
	prof := MeasureLatency(e, stream.NewUniform(5000, 20000, 2))
	if prof.N != 20000 {
		t.Fatalf("N=%d", prof.N)
	}
	if prof.P50 > prof.P99 || prof.P99 > prof.P999 || prof.P999 > prof.Max {
		t.Errorf("quantiles not monotone: %+v", prof)
	}
	if prof.Max <= 0 || prof.Max > time.Second {
		t.Errorf("implausible max %v", prof.Max)
	}
}

func TestLatencyQuantileEdges(t *testing.T) {
	// Single-update stream: all quantiles equal.
	e := baseline.NewExact()
	prof := MeasureLatency(e, stream.NewUniform(1, 1, 3))
	if prof.N != 1 || prof.P50 != prof.Max {
		t.Errorf("%+v", prof)
	}
}

func TestHarnessDeterministicStreams(t *testing.T) {
	// Two runs with the same factories produce identical truths (the
	// harness must not perturb generator state).
	mk := func(trial int) stream.F0Stream { return stream.NewZipf(1<<18, 1.2, 50000, int64(trial)) }
	r1 := RunF0(baseline.NewExact(), mk(7))
	r2 := RunF0(baseline.NewExact(), mk(7))
	if r1.Truth != r2.Truth || r1.Estimate != r2.Estimate {
		t.Errorf("non-deterministic: %v vs %v", r1, r2)
	}
	_ = rand.Int // keep math/rand import meaningful if edited
}
