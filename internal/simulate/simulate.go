// Package simulate is the experiment harness (DESIGN.md S12): it
// drives any F0 estimator over any workload, measures relative error,
// accounted state size, and per-update latency, and formats the
// comparison tables that reproduce Figure 1 (experiment E1) and the
// per-theorem experiments of EXPERIMENTS.md.
package simulate

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/stream"
)

// Result summarizes one estimator over one stream.
type Result struct {
	Algorithm   string
	Workload    string
	Truth       float64
	Estimate    float64
	RelErr      float64 // signed (Estimate−Truth)/Truth
	SpaceBits   int
	NsPerUpdate float64
	Updates     int
}

// RunF0 drives one estimator over one stream and measures it.
func RunF0(est baseline.F0Estimator, s stream.F0Stream) Result {
	return runF0(est, s, func() int { return stream.Drain(s, est.Add) })
}

// runF0 times the given drain step and assembles the measurement
// (shared by the scalar and batched paths so the measured fields can
// never diverge between them).
func runF0(est baseline.F0Estimator, s stream.F0Stream, drain func() int) Result {
	start := time.Now()
	n := drain()
	elapsed := time.Since(start)
	truth := float64(s.TrueF0())
	got := est.Estimate()
	rel := 0.0
	if truth > 0 {
		rel = (got - truth) / truth
	}
	return Result{
		Algorithm:   est.Name(),
		Workload:    s.Name(),
		Truth:       truth,
		Estimate:    got,
		RelErr:      rel,
		SpaceBits:   est.SpaceBits(),
		NsPerUpdate: float64(elapsed.Nanoseconds()) / float64(max(n, 1)),
		Updates:     n,
	}
}

// Aggregate is RMS/worst-case error statistics over repeated trials.
type Aggregate struct {
	Algorithm   string
	Trials      int
	RMSRelErr   float64
	MaxAbsRel   float64
	MeanBits    float64
	NsPerUpdate float64
	Failures    int // trials whose estimate was NaN/Inf
}

// RunF0Batch is RunF0 through the batched ingestion path: the stream
// is drained in batches of batchSize keys fed to est.AddBatch. For the
// KNW sketches the resulting state matches the scalar path exactly;
// the measured ns/update reflects the amortized per-key cost.
func RunF0Batch(est baseline.F0Estimator, s stream.F0Stream, batchSize int) Result {
	return runF0(est, s, func() int { return stream.DrainBatch(s, batchSize, est.AddBatch) })
}

// RunTrials runs trials independent (estimator, stream) pairs produced
// by the two factories and aggregates.
func RunTrials(trials int, mkEst func(trial int) baseline.F0Estimator,
	mkStream func(trial int) stream.F0Stream) Aggregate {
	return runTrials(trials, mkEst, mkStream, RunF0)
}

// RunTrialsBatch is RunTrials through the batched ingestion path.
func RunTrialsBatch(trials, batchSize int, mkEst func(trial int) baseline.F0Estimator,
	mkStream func(trial int) stream.F0Stream) Aggregate {
	return runTrials(trials, mkEst, mkStream,
		func(est baseline.F0Estimator, s stream.F0Stream) Result {
			return RunF0Batch(est, s, batchSize)
		})
}

func runTrials(trials int, mkEst func(trial int) baseline.F0Estimator,
	mkStream func(trial int) stream.F0Stream,
	run func(baseline.F0Estimator, stream.F0Stream) Result) Aggregate {
	var agg Aggregate
	agg.Trials = trials
	sum2, sumBits, sumNs := 0.0, 0.0, 0.0
	for i := 0; i < trials; i++ {
		r := run(mkEst(i), mkStream(i))
		agg.Algorithm = r.Algorithm
		if math.IsNaN(r.RelErr) || math.IsInf(r.RelErr, 0) {
			agg.Failures++
			continue
		}
		sum2 += r.RelErr * r.RelErr
		if a := math.Abs(r.RelErr); a > agg.MaxAbsRel {
			agg.MaxAbsRel = a
		}
		sumBits += float64(r.SpaceBits)
		sumNs += r.NsPerUpdate
	}
	good := trials - agg.Failures
	if good > 0 {
		agg.RMSRelErr = math.Sqrt(sum2 / float64(good))
		agg.MeanBits = sumBits / float64(good)
		agg.NsPerUpdate = sumNs / float64(good)
	}
	return agg
}

// FormatTable renders results as an aligned text table, one row per
// result, for the CLI tools and EXPERIMENTS.md.
func FormatTable(rows []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-28s %12s %12s %9s %12s %10s\n",
		"algorithm", "workload", "truth", "estimate", "rel.err", "space(bits)", "ns/update")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-28s %12.0f %12.0f %8.3f%% %12d %10.1f\n",
			r.Algorithm, r.Workload, r.Truth, r.Estimate, 100*r.RelErr, r.SpaceBits, r.NsPerUpdate)
	}
	return b.String()
}

// FormatAggregates renders aggregates sorted by RMS error.
func FormatAggregates(rows []Aggregate) string {
	sorted := append([]Aggregate(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RMSRelErr < sorted[j].RMSRelErr })
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %10s %10s %14s %10s %8s\n",
		"algorithm", "trials", "rms.err", "max.err", "mean bits", "ns/update", "fails")
	for _, a := range sorted {
		fmt.Fprintf(&b, "%-22s %7d %9.3f%% %9.3f%% %14.0f %10.1f %8d\n",
			a.Algorithm, a.Trials, 100*a.RMSRelErr, 100*a.MaxAbsRel, a.MeanBits, a.NsPerUpdate, a.Failures)
	}
	return b.String()
}

// LatencyProfile measures per-update latency quantiles — the
// worst-case-vs-amortized comparison of experiment E6. It feeds the
// stream one key at a time, timing each Add individually (coarse, but
// Θ(K) rescan spikes at rescale boundaries are orders of magnitude
// above the timer's noise floor).
type LatencyProfile struct {
	P50, P99, P999, Max time.Duration
	N                   int
}

// MeasureLatency profiles est over the stream.
func MeasureLatency(est baseline.F0Estimator, s stream.F0Stream) LatencyProfile {
	lat := make([]time.Duration, 0, 1<<21)
	stream.Drain(s, func(k uint64) {
		t0 := time.Now()
		est.Add(k)
		lat = append(lat, time.Since(t0))
	})
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return LatencyProfile{
		P50: q(0.50), P99: q(0.99), P999: q(0.999),
		Max: lat[len(lat)-1], N: len(lat),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
