package l0core

import (
	"math/bits"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/hashfn"
)

// RoughL0Estimator is the Appendix A.3 structure (Theorem 11): a
// constant-factor approximation of L0 under insertions and deletions,
// in O(log(n)·loglog(mM)) bits with O(1) update and reporting times.
//
// A pairwise-independent h splits the universe into substreams
// S_j = {x : lsb(h(x)) = j}; each substream feeds a Lemma 8 structure
// B_j, all sharing the same O(log 1/δ) bucket-hash functions. The
// reported level ĵ is the deepest j whose B_j counts more than 8 live
// items; 2^ĵ then sits within a constant factor below L0 (between
// ~L0/220 and ~L0/2 with probability ≥ 9/16 by the Theorem 11
// analysis), and a fixed scale-up yields R with L0 ≤ R ≤ O(1)·L0.
//
// O(1) reporting uses the paper's machine-word trick: a word z keeps
// bit j set iff B_j currently reports > 8, maintained on counter
// zero↔nonzero transitions; the deepest reporting level is then a
// most-significant-bit computation.
type RoughL0Estimator struct {
	logN    uint
	h       *hashfn.TwoWise
	c       int // Lemma 8 promise bound per level (paper: 141)
	buckets int
	fp      fieldRef
	bucketH []*hashfn.TwoWise // shared across levels, O(log 1/δ) of them
	// cnt[level][trial][bucket] and nonzero[level][trial].
	cnt     [][][]uint64
	nonzero [][]int
	z       uint64 // bit j set iff level j reports > 8 live items
}

// fieldRef is a tiny copy of the prime field parameters shared by all
// levels (one random prime for the whole structure, as the paper's
// instantiations share hash functions).
type fieldRef struct {
	p uint64
}

func (f fieldRef) add(a, b uint64) uint64 {
	s := a + b
	if s >= f.p {
		s -= f.p
	}
	return s
}

func (f fieldRef) reduceInt(v int64) uint64 {
	m := v % int64(f.p)
	if m < 0 {
		m += int64(f.p)
	}
	return uint64(m)
}

// RoughL0Config parameterizes RoughL0Estimator.
type RoughL0Config struct {
	// LogN: universe is [2^LogN]. Must be in [1, 62].
	LogN uint
	// C is the per-level Lemma 8 exactness bound. The paper uses 141;
	// the threshold test "count > 8" only needs exact counting slightly
	// above 8 plus non-collapsing behaviour above (the number of
	// occupied buckets among c² is monotone-ish in the live set and
	// exceeds 8 whenever > ~10 items are live), so the default 24 keeps
	// the c² bucket arrays practical. Zero selects 24; tests also
	// exercise the paper's 141.
	C int
	// Delta is each level's Lemma 8 failure probability (paper: 1/16).
	Delta float64
	// LogMM bounds frequency magnitudes by 2^LogMM (paper's mM).
	LogMM uint
}

func (c *RoughL0Config) normalize() {
	if c.LogN == 0 || c.LogN > 62 {
		panic("l0core: LogN must be in [1, 62]")
	}
	if c.C == 0 {
		c.C = 24
	}
	if c.C < 9 {
		panic("l0core: C must be > 8 for the reporting threshold")
	}
	if c.Delta == 0 {
		c.Delta = 1.0 / 16
	}
	if c.LogMM == 0 {
		c.LogMM = 32
	}
}

// reportThreshold is the "more than 8 live items" rule of Theorem 11.
const reportThreshold = 8

// NewRoughL0 draws a fresh RoughL0Estimator.
func NewRoughL0(cfg RoughL0Config, rng *rand.Rand) *RoughL0Estimator {
	cfg.normalize()
	trials := Lemma8Trials(cfg.Delta)
	// One Lemma 8 instance supplies the shared prime; its own arrays
	// are discarded (levels have their own).
	proto := NewExactSmallL0(cfg.C, cfg.Delta, cfg.LogMM, rng)
	levels := int(cfg.LogN) + 1
	e := &RoughL0Estimator{
		logN:    cfg.LogN,
		h:       hashfn.NewTwoWise(rng, 1),
		c:       cfg.C,
		buckets: cfg.C * cfg.C,
		fp:      fieldRef{p: proto.fp.P},
		bucketH: make([]*hashfn.TwoWise, trials),
		cnt:     make([][][]uint64, levels),
		nonzero: make([][]int, levels),
	}
	for t := range e.bucketH {
		e.bucketH[t] = hashfn.NewTwoWise(rng, uint64(e.buckets))
	}
	for j := range e.cnt {
		e.cnt[j] = make([][]uint64, trials)
		e.nonzero[j] = make([]int, trials)
		for t := range e.cnt[j] {
			e.cnt[j][t] = make([]uint64, e.buckets)
		}
	}
	return e
}

// Update processes the turnstile update x_key ← x_key + v in O(1)
// (one level, constant trials).
func (e *RoughL0Estimator) Update(key uint64, v int64) {
	dv := e.fp.reduceInt(v)
	if dv == 0 {
		return
	}
	j := bitutil.LSB(e.h.HashField(key)&bitutil.Mask(e.logN), e.logN)
	lvl := e.cnt[j]
	changed := false
	for t := range e.bucketH {
		b := e.bucketH[t].Hash(key)
		old := lvl[t][b]
		nw := e.fp.add(old, dv)
		lvl[t][b] = nw
		switch {
		case old == 0 && nw != 0:
			e.nonzero[j][t]++
			changed = true
		case old != 0 && nw == 0:
			e.nonzero[j][t]--
			changed = true
		}
	}
	if changed {
		e.refreshZ(int(j))
	}
}

// refreshZ recomputes bit j of the report word from the maintained
// per-trial counts (O(trials) = O(1)).
func (e *RoughL0Estimator) refreshZ(j int) {
	above := false
	for _, nz := range e.nonzero[j] {
		if nz > reportThreshold {
			above = true
			break
		}
	}
	if above {
		e.z |= 1 << uint(j)
	} else {
		e.z &^= 1 << uint(j)
	}
}

// LevelEstimate returns B_j's Lemma 8 output (max over trials of the
// nonzero-bucket count) — exact when L0(S_j) ≤ C.
func (e *RoughL0Estimator) LevelEstimate(j int) int {
	best := 0
	for _, nz := range e.nonzero[j] {
		if nz > best {
			best = nz
		}
	}
	return best
}

// deepestReporting returns the largest j with a > 8 report, or −1.
func (e *RoughL0Estimator) deepestReporting() int {
	if e.z == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(e.z)
}

// EstimateCoarse is the paper-literal Theorem 11 output: 2^ĵ for the
// deepest reporting level ĵ (1 when none reports). It sits within
// (L0/220, L0/2] with probability ≥ 9/16, i.e. it is a constant-factor
// UNDER-estimate by design; callers wanting R ≥ L0 use Estimate.
func (e *RoughL0Estimator) EstimateCoarse() uint64 {
	j := e.deepestReporting()
	if j < 0 {
		return 1
	}
	return 1 << uint(j)
}

// Estimate returns R with L0 ≤ R ≤ O(1)·L0 (with the Theorem 11
// success probability; amplify externally if needed). Rather than
// scaling the coarse 2^ĵ by its worst-case factor 220 — which would
// make the Figure 4 row estimator subsample ~256× too deep in the
// typical case — we exploit that B_ĵ's count is L0(S_ĵ) exactly (whp,
// Lemma 8): L0(S_ĵ)·2^{ĵ+1} is an unbiased estimate of L0, and a 4×
// safety factor puts R above L0 with the same probability the paper's
// analysis gives the coarse bound. Experiment E9 measures both.
// Returns 0 when no level reports and the structure has seen nothing
// at shallow levels either (L0 small; the Figure 4 caller is then in
// its small-L0 regime and never consults R).
func (e *RoughL0Estimator) Estimate() uint64 {
	j := e.deepestReporting()
	if j < 0 {
		return 0
	}
	count := e.LevelEstimate(j)
	r := uint64(count) << uint(j+1) // ≈ L0
	return 4 * r
}

// Reset clears all counters for reuse without redrawing hashes.
func (e *RoughL0Estimator) Reset() {
	for j := range e.cnt {
		for t := range e.cnt[j] {
			clear(e.cnt[j][t])
		}
		clear(e.nonzero[j])
	}
	e.z = 0
}

// SpaceBits charges buckets at ⌈log2 p⌉ bits plus hash seeds —
// O(log n · loglog mM) with the paper's (large) constants; see the
// RoughL0Config.C note.
func (e *RoughL0Estimator) SpaceBits() int {
	perBucket := 0
	for p := e.fp.p; p > 1; p >>= 1 {
		perBucket++
	}
	total := len(e.cnt) * len(e.bucketH) * e.buckets * perBucket
	total += e.h.SeedBits()
	for _, h := range e.bucketH {
		total += h.SeedBits()
	}
	total += 64 // z
	return total
}
