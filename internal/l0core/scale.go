package l0core

// MergeFromNegated merges −1 times another sketch's frequency vector
// into s: every Lemma 6 counter is linear over F_p, so cell-wise
// c ← c + (p − o.c) yields exactly the sketch of x_s − x_o. The
// estimate afterwards is therefore L0(x_s − x_o) — the number of
// coordinates where the two streams' frequency vectors differ, the
// paper's data-cleaning statistic (Section 1: "L0-estimation can be
// applied to a pair of streams to measure the number of unequal item
// counts").
//
// Both sketches must have been built with identical randomness (same
// Config and rng seed). The receiver is modified; the argument is not.
func (s *Sketch) MergeFromNegated(o *Sketch) {
	if s.cfg.K != o.cfg.K || s.cfg.LogN != o.cfg.LogN || s.fp.P != o.fp.P {
		panic("l0core: negated merge of incompatible sketches")
	}
	neg := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		return s.fp.P - v
	}
	for r := range s.rows {
		nz := 0
		for j := range s.rows[r] {
			s.rows[r][j] = s.fp.Add(s.rows[r][j], neg(o.rows[r][j]))
			if s.rows[r][j] != 0 {
				nz++
			}
		}
		s.rowNZ[r] = nz
	}
	nz := 0
	for j := range s.smallC {
		s.smallC[j] = s.fp.Add(s.smallC[j], neg(o.smallC[j]))
		if s.smallC[j] != 0 {
			nz++
		}
	}
	s.smallNZ = nz
	// Exact structure: counters are sums mod its own prime; negate
	// likewise.
	for t := range s.exact.cnt {
		enz := 0
		for b := range s.exact.cnt[t] {
			ov := o.exact.cnt[t][b]
			if ov != 0 {
				ov = s.exact.fp.P - ov
			}
			s.exact.cnt[t][b] = s.exact.fp.Add(s.exact.cnt[t][b], ov)
			if s.exact.cnt[t][b] != 0 {
				enz++
			}
		}
		s.exact.nonzero[t] = enz
	}
	// Rough estimator buckets.
	if len(s.rough.cnt) != len(o.rough.cnt) || s.rough.fp.p != o.rough.fp.p {
		panic("l0core: negated merge of incompatible rough estimators")
	}
	for j := range s.rough.cnt {
		for t := range s.rough.cnt[j] {
			rnz := 0
			for b := range s.rough.cnt[j][t] {
				ov := o.rough.cnt[j][t][b]
				if ov != 0 {
					ov = s.rough.fp.p - ov
				}
				s.rough.cnt[j][t][b] = s.rough.fp.add(s.rough.cnt[j][t][b], ov)
				if s.rough.cnt[j][t][b] != 0 {
					rnz++
				}
			}
			s.rough.nonzero[j][t] = rnz
		}
		s.rough.refreshZ(j)
	}
}
