package l0core

import (
	"math/rand"
	"testing"
)

func TestLemma8Trials(t *testing.T) {
	if Lemma8Trials(0.5) != 2 {
		t.Errorf("Lemma8Trials(0.5)=%d want 2", Lemma8Trials(0.5))
	}
	if Lemma8Trials(1.0/16) != 5 {
		t.Errorf("Lemma8Trials(1/16)=%d want 5", Lemma8Trials(1.0/16))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("delta=0 should panic")
		}
	}()
	Lemma8Trials(0)
}

// TestLemma8ExactSmallL0 is experiment E8: with the promise L0 ≤ c the
// structure reports L0 exactly, under insert-only, mixed, and
// delete-heavy turnstile streams.
func TestLemma8ExactSmallL0(t *testing.T) {
	for _, l0 := range []int{0, 1, 5, 17, 64, 100, 141} {
		rng := rand.New(rand.NewSource(200 + int64(l0)))
		e := NewExactSmallL0(141, 1.0/64, 32, rng)
		keys := make([]uint64, l0)
		for i := range keys {
			keys[i] = rng.Uint64()
			e.Update(keys[i], int64(rng.Intn(100)+1))
		}
		if got := e.Estimate(); got != l0 {
			t.Errorf("L0=%d (inserts): estimate %d", l0, got)
		}
	}
}

func TestLemma8Deletions(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	e := NewExactSmallL0(100, 1.0/64, 32, rng)
	// 50 items at +v, then fully delete 20 of them.
	keys := make([]uint64, 50)
	vals := make([]int64, 50)
	for i := range keys {
		keys[i] = rng.Uint64()
		vals[i] = int64(rng.Intn(1000) + 1)
		e.Update(keys[i], vals[i])
	}
	for i := 0; i < 20; i++ {
		e.Update(keys[i], -vals[i])
	}
	if got := e.Estimate(); got != 30 {
		t.Errorf("after deletions: estimate %d want 30", got)
	}
	// Partial deletion keeps the item alive.
	e.Update(keys[20], -vals[20]+1) // frequency becomes 1
	if got := e.Estimate(); got != 30 {
		t.Errorf("partial deletion changed count: %d", got)
	}
	// Negative frequencies count as nonzero (x_i ≠ 0 is the criterion).
	e.Update(keys[21], -3*vals[21])
	if got := e.Estimate(); got != 30 {
		t.Errorf("negative frequency dropped: %d", got)
	}
}

func TestLemma8InterleavedChurn(t *testing.T) {
	// Random walk of a small live set, verified against an exact model.
	rng := rand.New(rand.NewSource(211))
	e := NewExactSmallL0(64, 1.0/256, 32, rng)
	model := make(map[uint64]int64)
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	for step := 0; step < 5000; step++ {
		k := keys[rng.Intn(len(keys))]
		v := int64(rng.Intn(11) - 5)
		if v == 0 {
			v = 1
		}
		e.Update(k, v)
		model[k] += v
		if model[k] == 0 {
			delete(model, k)
		}
		if step%500 == 0 {
			if got := e.Estimate(); got != len(model) {
				t.Fatalf("step %d: estimate %d model %d", step, got, len(model))
			}
		}
	}
	if got := e.Estimate(); got != len(model) {
		t.Fatalf("final: estimate %d model %d", got, len(model))
	}
}

func TestLemma8ZeroUpdateIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	e := NewExactSmallL0(16, 0.1, 32, rng)
	e.Update(42, 0)
	if e.Estimate() != 0 {
		t.Error("zero-delta update created a live item")
	}
}

func TestLemma8BeyondPromiseIsLowerBound(t *testing.T) {
	// Beyond the promise the estimate may undercount (collisions) but
	// must remain positive and bounded by the bucket count.
	rng := rand.New(rand.NewSource(213))
	e := NewExactSmallL0(16, 0.1, 32, rng) // 256 buckets
	for i := 0; i < 10000; i++ {
		e.Update(rng.Uint64(), 1)
	}
	got := e.Estimate()
	if got <= 16 || got > 256 {
		t.Errorf("estimate %d outside (16, 256]", got)
	}
}

func TestLemma8Merge(t *testing.T) {
	mk := func() *ExactSmallL0 {
		return NewExactSmallL0(100, 1.0/64, 32, rand.New(rand.NewSource(214)))
	}
	a, b, whole := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(215))
	for i := 0; i < 60; i++ {
		k, v := rng.Uint64(), int64(rng.Intn(50)+1)
		whole.Update(k, v)
		if i%2 == 0 {
			a.Update(k, v)
		} else {
			b.Update(k, v)
		}
	}
	// One key fully cancels across the two halves.
	k := rng.Uint64()
	whole.Update(k, 7)
	whole.Update(k, -7)
	a.Update(k, 7)
	b.Update(k, -7)
	a.MergeFrom(b)
	if a.Estimate() != whole.Estimate() {
		t.Errorf("merged %d != whole %d", a.Estimate(), whole.Estimate())
	}
	if a.Estimate() != 60 {
		t.Errorf("estimate %d want 60 (cancelled key must not count)", a.Estimate())
	}
}

func TestLemma8MergeIncompatiblePanics(t *testing.T) {
	a := NewExactSmallL0(10, 0.1, 32, rand.New(rand.NewSource(1)))
	b := NewExactSmallL0(11, 0.1, 32, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MergeFrom(b)
}

func TestLemma8SpaceBits(t *testing.T) {
	rng := rand.New(rand.NewSource(216))
	small := NewExactSmallL0(10, 0.25, 32, rng).SpaceBits()
	big := NewExactSmallL0(100, 0.25, 32, rng).SpaceBits()
	if big < 50*small {
		t.Errorf("space should grow ~c²: c=10 %d bits, c=100 %d bits", small, big)
	}
}

func TestLemma8BadArgsPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(217))
	for _, f := range []func(){
		func() { NewExactSmallL0(0, 0.1, 32, rng) },
		func() { NewExactSmallL0(10, 1.5, 32, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkLemma8Update(b *testing.B) {
	e := NewExactSmallL0(141, 1.0/16, 32, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i)&1023, 1)
	}
}
