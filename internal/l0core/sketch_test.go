package l0core

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{
		{LogN: 3},
		{LogN: 63},
		{K: 31},
		{K: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewSketch(cfg, rng)
		}()
	}
}

// TestExactSmallL0Regime: below 100 live items the sketch answers
// exactly (whp).
func TestExactSmallL0Regime(t *testing.T) {
	for _, l0 := range []int{0, 1, 10, 50, 99} {
		rng := rand.New(rand.NewSource(400 + int64(l0)))
		s := NewSketch(Config{K: 1024}, rng)
		for i := 0; i < l0; i++ {
			s.Update(rng.Uint64(), int64(rng.Intn(100)+1))
		}
		got, err := s.Estimate()
		if err != nil {
			t.Fatalf("L0=%d: %v", l0, err)
		}
		if got != float64(l0) {
			t.Errorf("L0=%d: got %v", l0, got)
		}
	}
}

func TestExactRegimeWithDeletions(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	s := NewSketch(Config{K: 1024}, rng)
	type kv struct {
		k uint64
		v int64
	}
	items := make([]kv, 90)
	for i := range items {
		items[i] = kv{rng.Uint64(), int64(rng.Intn(100) + 1)}
		s.Update(items[i].k, items[i].v)
	}
	for i := 0; i < 40; i++ {
		s.Update(items[i].k, -items[i].v)
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("got %v want exactly 50", got)
	}
}

// TestTheorem10L0Accuracy is experiment E7: (1±O(ε))·L0 across
// magnitudes, with a turnstile stream whose final live set is known.
func TestTheorem10L0Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const k = 4096
	epsPrime := 1 / math.Sqrt(float64(k))
	for _, l0 := range []int{500, 5000, 50000, 500000} {
		const trials = 12
		sum2 := 0.0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(500*int64(l0) + int64(trial)))
			s := NewSketch(Config{K: k}, rng)
			// Live items...
			for i := 0; i < l0; i++ {
				s.Update(rng.Uint64(), int64(rng.Intn(20)+1))
			}
			// ...plus churn: items inserted then fully deleted.
			for i := 0; i < l0/2; i++ {
				key := rng.Uint64()
				v := int64(rng.Intn(20) + 1)
				s.Update(key, v)
				s.Update(key, -v)
			}
			got, err := s.Estimate()
			if err != nil {
				t.Fatalf("L0=%d trial %d: %v", l0, trial, err)
			}
			rel := (got - float64(l0)) / float64(l0)
			sum2 += rel * rel
		}
		rms := math.Sqrt(sum2 / trials)
		if rms > 16*epsPrime {
			t.Errorf("L0=%d: RMS relative error %.4f > %.4f", l0, rms, 16*epsPrime)
		}
	}
}

func TestMixedSignFrequencies(t *testing.T) {
	// Items driven to negative net frequencies still count toward L0
	// (the paper: unlike Ganguly's algorithm, x_i ≥ 0 is not required).
	rng := rand.New(rand.NewSource(420))
	s := NewSketch(Config{K: 1024}, rng)
	for i := 0; i < 60; i++ {
		s.Update(rng.Uint64(), -int64(rng.Intn(500)+1))
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Errorf("negative frequencies: got %v want 60", got)
	}
}

func TestAdversarialCancellation(t *testing.T) {
	// Many co-located updates that sum to zero per key: the classic
	// false-negative trap for bit-based structures, defused by Lemma 6.
	rng := rand.New(rand.NewSource(421))
	s := NewSketch(Config{K: 1024}, rng)
	live := 0
	for i := 0; i < 3000; i++ {
		key := rng.Uint64()
		// +a, +b, −(a+b) in three updates: net zero.
		a, b := int64(rng.Intn(1000)+1), int64(rng.Intn(1000)+1)
		s.Update(key, a)
		s.Update(key, b)
		s.Update(key, -(a + b))
	}
	for i := 0; i < 2000; i++ { // plus a live population
		s.Update(rng.Uint64(), 1)
		live++
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-float64(live)) / float64(live); rel > 0.35 {
		t.Errorf("cancellation stream: got %v want ~%d (rel %.3f)", got, live, rel)
	}
}

func TestUpdateZeroIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(422))
	s := NewSketch(Config{K: 1024}, rng)
	s.Update(7, 0)
	got, err := s.Estimate()
	if err != nil || got != 0 {
		t.Errorf("zero update changed state: %v %v", got, err)
	}
}

func TestL0Merge(t *testing.T) {
	mk := func() *Sketch {
		return NewSketch(Config{K: 1024}, rand.New(rand.NewSource(423)))
	}
	a, b, whole := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(424))
	for i := 0; i < 40000; i++ {
		k, v := rng.Uint64(), int64(rng.Intn(9)+1)
		whole.Update(k, v)
		if i%2 == 0 {
			a.Update(k, v)
		} else {
			b.Update(k, v)
		}
	}
	// Cross-half cancellation: +v into a, −v into b.
	for i := 0; i < 5000; i++ {
		k, v := rng.Uint64(), int64(rng.Intn(9)+1)
		whole.Update(k, v)
		whole.Update(k, -v)
		a.Update(k, v)
		b.Update(k, -v)
	}
	a.MergeFrom(b)
	got, err1 := a.Estimate()
	want, err2 := whole.Estimate()
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	// Identical hashes and linear counters: states are equal, so the
	// estimates must agree exactly.
	if got != want {
		t.Errorf("merged %v != whole %v", got, want)
	}
	if rel := math.Abs(got-40000) / 40000; rel > 0.3 {
		t.Errorf("merged estimate %v far from truth 40000", got)
	}
}

func TestL0MergeIncompatiblePanics(t *testing.T) {
	a := NewSketch(Config{K: 1024}, rand.New(rand.NewSource(1)))
	b := NewSketch(Config{K: 2048}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MergeFrom(b)
}

func TestL0SpaceScaling(t *testing.T) {
	// Theorem 10: the matrix is Θ(K·log n·log p) bits — linear in K
	// once the K-independent constants (RoughL0Estimator's and
	// Lemma 8's bucket arrays) are subtracted. The per-column slope
	// must be ≈ (log n + 1) rows × ⌈log2 p⌉ ≈ 33·22 bits, and log n
	// must enter multiplicatively in the matrix term.
	rng := rand.New(rand.NewSource(425))
	k1 := NewSketch(Config{K: 1024, LogN: 32}, rng).SpaceBits()
	k2 := NewSketch(Config{K: 4096, LogN: 32}, rng).SpaceBits()
	slope := float64(k2-k1) / (4096 - 1024)
	if slope < 300 || slope > 1500 {
		t.Errorf("per-column slope %.0f bits, want ~800 (33 rows × ~22 bits + small row + u)", slope)
	}
	n1 := NewSketch(Config{K: 1024, LogN: 16}, rng).SpaceBits()
	if n1 >= k1 {
		t.Errorf("halving log n should shrink space: %d -> %d", k1, n1)
	}
}

func TestL0Amplified(t *testing.T) {
	rng := rand.New(rand.NewSource(426))
	a := NewAmplified(5, Config{K: 1024}, rng)
	const l0 = 30000
	keys := make([]uint64, l0+10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		a.Update(keys[i], 2)
	}
	for i := l0; i < len(keys); i++ { // delete the extras
		a.Update(keys[i], -2)
	}
	got, err := a.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-l0) / l0; rel > 0.3 {
		t.Errorf("amplified L0 %v (rel %.3f)", got, rel)
	}
	if a.SpaceBits() <= 5*1024 {
		t.Error("SpaceBits should sum copies")
	}
}

func TestReferenceModeWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(427))
	s := NewSketch(Config{K: 1024, Reference: true}, rng)
	for i := 0; i < 20000; i++ {
		s.Update(rng.Uint64(), 1)
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-20000) / 20000; rel > 0.35 {
		t.Errorf("reference mode estimate %v (rel %.3f)", got, rel)
	}
}

func BenchmarkL0Update(b *testing.B) {
	s := NewSketch(Config{K: 4096}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i)*2654435761, 1)
	}
}

func BenchmarkL0Estimate(b *testing.B) {
	s := NewSketch(Config{K: 4096}, rand.New(rand.NewSource(1)))
	for i := 0; i < 200000; i++ {
		s.Update(uint64(i)*2654435761, 1)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v, _ = s.Estimate()
	}
	_ = v
}
