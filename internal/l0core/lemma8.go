// Package l0core implements the paper's L0 (Hamming norm) machinery:
// the turnstile-stream sketch of Section 4 (Figure 4 skeleton with
// Lemma 6's finite-field counters), the exact small-L0 structure of
// Lemma 8, and RoughL0Estimator of Appendix A.3 (Theorem 11).
//
// L0 = |{i : x_i ≠ 0}| generalizes F0 to streams with deletions: an
// update (i, v) performs x_i ← x_i + v with v possibly negative. The
// F0 trick of remembering "some item hashed here" breaks under
// deletions — frequencies of opposite signs can cancel to zero and
// give false negatives — so every bit of the F0 bit-matrix becomes a
// counter over a random prime field F_p holding the dot product of the
// frequencies landing there with a random vector u (Lemma 6): the
// counter is zero iff the underlying frequency sub-vector is zero,
// except with probability ~1/p (Fact 3) plus the probability that p
// divides a frequency (controlled by drawing p at random from a range
// with many primes, Lemma 6's [D, D³]).
package l0core

import (
	"math"
	"math/rand"

	"repro/internal/hashfn"
	"repro/internal/prime"
)

// ExactSmallL0 is Lemma 8: given the promise L0 ≤ c, it outputs L0
// exactly with probability ≥ 1 − δ, using O(c²·loglog(mM)) bits plus
// O(log 1/δ) pairwise-independent hash functions. Each of the
// O(log 1/δ) trials hashes the universe into c² buckets, each bucket
// maintaining the sum of frequencies modulo a random prime
// p = Θ(log(mM)·loglog(mM)); the trial's estimate is the number of
// nonzero buckets (≤ L0 always — collisions and p-divisibility only
// merge or hide items), and the final output is the maximum over
// trials. Update and reporting times are O(1).
type ExactSmallL0 struct {
	c       int
	buckets int
	fp      prime.Field
	hs      []*hashfn.TwoWise
	cnt     [][]uint64 // cnt[trial][bucket]: Σ freq mod p
	nonzero []int      // maintained per-trial count of nonzero buckets
}

// Lemma8Trials returns the O(log 1/δ) trial count used for a target
// failure probability δ: each trial independently perfect-hashes the
// ≤ c live items into c² buckets with probability ≥ 1/2, so
// ⌈log2(1/δ)⌉ + 1 trials suffice for the max to be exact w.p. ≥ 1 − δ.
func Lemma8Trials(delta float64) int {
	if delta <= 0 || delta >= 1 {
		panic("l0core: delta must be in (0,1)")
	}
	return int(math.Ceil(math.Log2(1/delta))) + 1
}

// NewExactSmallL0 builds a Lemma 8 structure for the promise L0 ≤ c,
// failure probability δ, and frequency magnitudes bounded by 2^logMM
// (the paper's mM). Trials share the prime p, as the instantiations in
// RoughL0Estimator share their hash functions.
func NewExactSmallL0(c int, delta float64, logMM uint, rng *rand.Rand) *ExactSmallL0 {
	if c < 1 {
		panic("l0core: c must be positive")
	}
	trials := Lemma8Trials(delta)
	// p = Θ(log(mM)·loglog(mM)): a nonzero frequency |x| ≤ 2^logMM has
	// at most logMM prime factors, and [D, 4D] holds ~3D/ln D primes,
	// so Pr[p | x] = O(logMM·ln(D)/D) — small for D a large multiple
	// of logMM·loglog(mM).
	ll := math.Log2(float64(logMM) + 2)
	d := uint64(64 * float64(logMM) * ll)
	if d < 257 {
		d = 257
	}
	e := &ExactSmallL0{
		c:       c,
		buckets: c * c,
		fp:      prime.NewField(prime.RandPrimeIn(rng, d, 4*d)),
		hs:      make([]*hashfn.TwoWise, trials),
		cnt:     make([][]uint64, trials),
		nonzero: make([]int, trials),
	}
	for t := range e.hs {
		e.hs[t] = hashfn.NewTwoWise(rng, uint64(e.buckets))
		e.cnt[t] = make([]uint64, e.buckets)
	}
	return e
}

// Update processes the turnstile update x_key ← x_key + v in O(1)
// (trials are a constant depending only on δ).
func (e *ExactSmallL0) Update(key uint64, v int64) {
	dv := e.fp.ReduceInt(v)
	if dv == 0 {
		return
	}
	for t := range e.hs {
		b := e.hs[t].Hash(key)
		old := e.cnt[t][b]
		nw := e.fp.Add(old, dv)
		e.cnt[t][b] = nw
		switch {
		case old == 0 && nw != 0:
			e.nonzero[t]++
		case old != 0 && nw == 0:
			e.nonzero[t]--
		}
	}
}

// Estimate returns the maximum per-trial count of nonzero buckets,
// which equals L0 with probability ≥ 1 − δ when L0 ≤ c. The value
// never exceeds the true L0 plus p-arithmetic coincidences (it is a
// lower bound in expectation), so thresholds of the form "estimate > τ"
// are conservative for all L0.
func (e *ExactSmallL0) Estimate() int {
	best := 0
	for _, nz := range e.nonzero {
		if nz > best {
			best = nz
		}
	}
	return best
}

// C returns the structure's exactness promise bound.
func (e *ExactSmallL0) C() int { return e.c }

// MergeFrom merges another structure built with identical randomness
// (same rng seed): counters add in F_p, so the merged structure equals
// one that saw both streams.
func (e *ExactSmallL0) MergeFrom(o *ExactSmallL0) {
	if e.buckets != o.buckets || len(e.hs) != len(o.hs) || e.fp.P != o.fp.P {
		panic("l0core: merge of incompatible ExactSmallL0")
	}
	for t := range e.cnt {
		nz := 0
		for b := range e.cnt[t] {
			e.cnt[t][b] = e.fp.Add(e.cnt[t][b], o.cnt[t][b])
			if e.cnt[t][b] != 0 {
				nz++
			}
		}
		e.nonzero[t] = nz
	}
}

// Reset clears all counters for reuse without redrawing hashes.
func (e *ExactSmallL0) Reset() {
	for t := range e.cnt {
		clear(e.cnt[t])
	}
	clear(e.nonzero)
}

// SpaceBits charges each bucket at ⌈log2 p⌉ bits (the packed
// representation Lemma 8's O(c²·loglog mM) bound refers to) plus the
// pairwise hash seeds.
func (e *ExactSmallL0) SpaceBits() int {
	perBucket := 0
	for p := e.fp.P; p > 1; p >>= 1 {
		perBucket++
	}
	total := len(e.cnt) * e.buckets * perBucket
	for _, h := range e.hs {
		total += h.SeedBits()
	}
	return total
}
