package l0core

// White-box failure-injection tests: the L0 structures have two
// designed failure modes, each assigned small probability by the
// paper's analysis. We construct both adversarially (using unexported
// state — these are same-package tests) to confirm (a) they behave
// exactly as the analysis says, and (b) nothing else breaks around
// them.

import (
	"math/rand"
	"testing"
)

// TestLemma8PrimeDivisibilityFailure: Lemma 8's counters hold sums of
// frequencies mod p; a frequency that is a multiple of p is invisible.
// The paper makes this unlikely by drawing p at random from a range
// with many primes (a fixed |x_i| ≤ mM divides at most log(mM) of
// them). Here we cheat: read the drawn p and insert exactly that
// frequency — the item must vanish from the estimate, and reappear
// once its frequency moves off the multiple.
func TestLemma8PrimeDivisibilityFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	e := NewExactSmallL0(50, 1.0/64, 32, rng)
	p := int64(e.fp.P)

	e.Update(1, 7) // a normal item
	e.Update(2, p) // frequency exactly p ≡ 0: invisible by design
	if got := e.Estimate(); got != 1 {
		t.Errorf("estimate %d; the p-multiple item should be invisible (this is the designed failure mode)", got)
	}
	e.Update(2, 1) // frequency p+1: visible again
	if got := e.Estimate(); got != 2 {
		t.Errorf("estimate %d after nudging off the multiple, want 2", got)
	}
	e.Update(2, -1) // back to the multiple
	e.Update(2, -p) // and now genuinely zero
	if got := e.Estimate(); got != 1 {
		t.Errorf("estimate %d after true deletion, want 1", got)
	}
}

// TestLemma6UCollisionCancellation: two items in the same matrix cell
// whose u-coordinates also collide can cancel: x1·u_c + x2·u_c ≡ 0
// with x1 = −x2. The paper's event Q′ bounds the probability of such
// double collisions; we construct one (small K makes the search cheap)
// and confirm the cell goes dark while the rest of the sketch — in
// particular the Lemma 8 exact structure, which hashes independently —
// still sees both items.
func TestLemma6UCollisionCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	s := NewSketch(Config{K: 32, LogN: 8}, rng)

	// Find two keys that share the matrix row, column, and u-coordinate.
	k1 := uint64(12345)
	z1 := s.h2.Hash(k1)
	col1 := int(s.h3.Hash(z1)) & (s.cfg.K - 1)
	row1 := rowOf(s, k1)
	u1 := s.h4.Hash(z1)
	var k2 uint64
	found := false
	for cand := uint64(1); cand < 3_000_000; cand++ {
		if cand == k1 {
			continue
		}
		z := s.h2.Hash(cand)
		if int(s.h3.Hash(z))&(s.cfg.K-1) != col1 || s.h4.Hash(z) != u1 {
			continue
		}
		if rowOf(s, cand) != row1 {
			continue
		}
		k2 = cand
		found = true
		break
	}
	if !found {
		t.Skip("no colliding key in search budget (seed-dependent)")
	}

	s.Update(k1, 9)
	s.Update(k2, -9)
	if got := s.rows[row1][col1]; got != 0 {
		t.Errorf("constructed cancellation failed: cell = %d", got)
	}
	// The independent Lemma 8 structure must still count both.
	if got := s.exact.Estimate(); got != 2 {
		t.Errorf("exact structure sees %d items, want 2", got)
	}
	// And the sketch's top-level answer, which prefers the exact
	// structure in this regime, must be right despite the dark cell.
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != 2 {
		t.Errorf("sketch estimate %v, want 2 (exact regime should mask the cell collision)", est)
	}
}

func rowOf(s *Sketch, key uint64) int {
	return int(lsbOf(s, key))
}

func lsbOf(s *Sketch, key uint64) uint {
	v := s.h1.HashField(key) & (1<<s.cfg.LogN - 1)
	if v == 0 {
		return s.cfg.LogN
	}
	r := uint(0)
	for v&1 == 0 {
		v >>= 1
		r++
	}
	return r
}

// TestRoughL0SharedPrimeFailureIsIndependentAcrossTrials: Lemma 8's
// trials share one prime but use independent bucket hashes, so a
// *collision* failure in one trial is repaired by another (that is the
// whole point of taking the max). Construct a two-item bucket
// collision in trial 0 and verify the max over trials still reports 2.
func TestLemma8CollisionRepairedByOtherTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	e := NewExactSmallL0(32, 1.0/1024, 32, rng) // 11 trials: repair certain
	k1 := uint64(777)
	b1 := e.hs[0].Hash(k1)
	var k2 uint64
	for cand := uint64(1); ; cand++ {
		if cand != k1 && e.hs[0].Hash(cand) == b1 {
			k2 = cand
			break
		}
	}
	// Frequencies that cancel in a shared bucket: +5 and −5.
	e.Update(k1, 5)
	e.Update(k2, -5)
	if e.nonzero[0] > 1 {
		// They collided in trial 0's bucket and cancelled there.
		t.Logf("trial 0 sees %d nonzero buckets (cancellation constructed)", e.nonzero[0])
	}
	if got := e.Estimate(); got != 2 {
		t.Errorf("max over trials %d, want 2 (independent trials must repair)", got)
	}
}
