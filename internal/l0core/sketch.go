package l0core

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ballsbins"
	"repro/internal/bitutil"
	"repro/internal/hashfn"
	"repro/internal/prime"
)

// ErrSaturated is returned when the consulted estimator row is fully
// occupied, which only happens when the rough L0 estimate failed low.
var ErrSaturated = errors.New("l0core: estimator row saturated")

// Config parameterizes an L0 Sketch.
type Config struct {
	// LogN: universe is [2^LogN]; defaults to 32, must be in [4, 62].
	LogN uint
	// K is the number of columns (the paper's K = 1/ε²); power of two
	// ≥ 32. Zero selects KForEpsilon-equivalent 4096.
	K int
	// LogMM bounds frequency magnitudes by 2^LogMM (default 32).
	LogMM uint
	// Reference selects the k-wise Carter–Wegman polynomial for h3
	// (Figure 4's analysis hash) instead of the O(1) tabulation family.
	Reference bool
	// Rough overrides the RoughL0Estimator configuration (C, Delta);
	// LogN/LogMM are copied from this Config.
	RoughC     int
	RoughDelta float64
}

func (c *Config) normalize() {
	if c.LogN == 0 {
		c.LogN = 32
	}
	if c.LogN < 4 || c.LogN > 62 {
		panic("l0core: LogN must be in [4, 62]")
	}
	if c.K == 0 {
		c.K = 4096
	}
	if c.K < 32 || !bitutil.IsPow2(uint64(c.K)) {
		panic("l0core: K must be a power of two >= 32")
	}
	if c.LogMM == 0 {
		c.LogMM = 32
	}
}

// Sketch is the Section 4 L0 estimator: the Figure 4 bit-matrix
// skeleton with every bit A_{i,j} realized as a Lemma 6 counter B_{i,j}
// over a random prime field, so deletions cannot produce false
// negatives. It supports turnstile updates (i, v) with v of either
// sign and reports (1 ± O(ε))·L0 with constant probability
// (Theorem 10); use Amplified for 1 − δ.
//
// Components:
//
//   - matrix: (log n + 1) × K counters; row = lsb(h1(i)), column =
//     h3(h2(i)); each update adds v·u_{h4(h2(i))} mod p (Lemma 6).
//   - small: an unsubsampled row of 2K counters playing the role of
//     Section 3.3's 2K-bit array, again via Lemma 6 counters, plus a
//     Lemma 8 structure for exact answers when L0 ≤ 100.
//   - rough: RoughL0Estimator supplying R at reporting time (unlike
//     F0, the full matrix is retained, so R is consulted only by the
//     estimator — this is where the extra log n factor in space comes
//     from, and why L0 needs no all-times guarantee from its rough
//     estimator).
type Sketch struct {
	cfg Config

	h1 *hashfn.TwoWise // level hash
	h2 *hashfn.TwoWise // [n] → [K³]
	h3 hashfn.Family   // [K³] → [2K]
	h4 *hashfn.TwoWise // [K³] → [K]: selects the u-coordinate (Lemma 6)

	fp prime.Field
	u  []uint64 // random vector in F_p^K

	rows    [][]uint64 // rows[r][j]: Lemma 6 counter
	rowNZ   []int      // maintained nonzero count per row
	smallC  []uint64   // 2K unsubsampled counters
	smallNZ int

	exact *ExactSmallL0
	rough *RoughL0Estimator
}

// NewSketch draws a fresh L0 sketch using randomness from rng.
func NewSketch(cfg Config, rng *rand.Rand) *Sketch {
	cfg.normalize()
	k := cfg.K
	k3 := uint64(k) * uint64(k) * uint64(k)
	// Lemma 6: p random in [D, D³] with D = 100·K·log(mM). We sample
	// from [D, 4D] — any prime ≥ D gives the divisibility bound, and
	// keeping p = Θ(D) keeps each counter at log K + loglog mM + O(1)
	// bits, the representation Theorem 10's space bound wants.
	d := uint64(100) * uint64(k) * uint64(cfg.LogMM)
	p := prime.RandPrimeIn(rng, d, 4*d)
	s := &Sketch{
		cfg: cfg,
		h1:  hashfn.NewTwoWise(rng, 1),
		h2:  hashfn.NewTwoWise(rng, k3),
		h4:  hashfn.NewTwoWise(rng, uint64(k)),
		fp:  prime.NewField(p),
	}
	if cfg.Reference {
		s.h3 = hashfn.NewKWise(rng,
			hashfn.KForEps(uint64(k), 1/math.Sqrt(float64(k))), uint64(2*k))
	} else {
		s.h3 = hashfn.NewTabulation32(rng, uint64(2*k))
	}
	s.u = make([]uint64, k)
	for i := range s.u {
		// u must avoid 0 so a lone item is never invisible (Fact 3's
		// vector w needs nonzero coordinates on singletons).
		for s.u[i] == 0 {
			s.u[i] = s.fp.Rand(rng)
		}
	}
	levels := int(cfg.LogN) + 1
	s.rows = make([][]uint64, levels)
	for r := range s.rows {
		s.rows[r] = make([]uint64, k)
	}
	s.rowNZ = make([]int, levels)
	s.smallC = make([]uint64, 2*k)
	s.exact = NewExactSmallL0(ExactCap, 1.0/64, cfg.LogMM, rng)
	s.rough = NewRoughL0(RoughL0Config{
		LogN: cfg.LogN, LogMM: cfg.LogMM,
		C: cfg.RoughC, Delta: cfg.RoughDelta,
	}, rng)
	return s
}

// ExactCap is the exact-counting bound of the small-L0 regime
// (Section 4's "detecting and estimating when L0 ≤ 100").
const ExactCap = 100

// K returns the column count.
func (s *Sketch) K() int { return s.cfg.K }

// Update processes the turnstile update x_key ← x_key + v in O(1).
func (s *Sketch) Update(key uint64, v int64) {
	if v == 0 {
		return
	}
	z2 := s.h2.Hash(key)
	col2 := int(s.h3.Hash(z2)) // ∈ [0, 2K)
	r := int(bitutil.LSB(s.h1.HashField(key)&bitutil.Mask(s.cfg.LogN), s.cfg.LogN))
	s.updateHashed(key, v, z2, col2, r)
}

// batchChunk is the number of updates whose hash values UpdateBatch
// precomputes per inner chunk (see core.FastSketch.AddBatch).
const batchChunk = 256

// UpdateBatch applies the updates exactly as sequential Update calls
// would. A nil deltas slice means every delta is +1 (the F0-as-L0
// special case); otherwise len(deltas) must equal len(keys). The three
// hash families are each evaluated over the chunk in a tight loop, so
// per-call overhead and hash-to-hash data dependencies are amortized
// across the batch.
func (s *Sketch) UpdateBatch(keys []uint64, deltas []int64) {
	if deltas != nil && len(deltas) != len(keys) {
		panic("l0core: UpdateBatch length mismatch")
	}
	var z2s [batchChunk]uint64
	var col2s, rs [batchChunk]int32
	mask := bitutil.Mask(s.cfg.LogN)
	for len(keys) > 0 {
		n := len(keys)
		if n > batchChunk {
			n = batchChunk
		}
		chunk := keys[:n]
		keys = keys[n:]
		var dchunk []int64
		if deltas != nil {
			dchunk = deltas[:n]
			deltas = deltas[n:]
		}
		for i, key := range chunk {
			z2s[i] = s.h2.Hash(key)
		}
		for i := range chunk {
			col2s[i] = int32(s.h3.Hash(z2s[i]))
		}
		for i, key := range chunk {
			rs[i] = int32(bitutil.LSB(s.h1.HashField(key)&mask, s.cfg.LogN))
		}
		for i, key := range chunk {
			v := int64(1)
			if dchunk != nil {
				v = dchunk[i]
			}
			if v == 0 {
				continue
			}
			s.updateHashed(key, v, z2s[i], int(col2s[i]), int(rs[i]))
		}
	}
}

// AddBatch records the keys with delta +1 each.
func (s *Sketch) AddBatch(keys []uint64) { s.UpdateBatch(keys, nil) }

// updateHashed is the post-hashing tail of Update, shared with
// UpdateBatch: z2 = h2(key), col2 = h3(z2), r = lsb(h1(key)).
func (s *Sketch) updateHashed(key uint64, v int64, z2 uint64, col2, r int) {
	col := col2 & (s.cfg.K - 1) // matrix column
	uc := s.u[s.h4.Hash(z2)]    // Lemma 6's u-coordinate
	dv := s.fp.Mul(s.fp.ReduceInt(v), uc)

	// Matrix cell.
	row := s.rows[r]
	old := row[col]
	nw := s.fp.Add(old, dv)
	row[col] = nw
	switch {
	case old == 0 && nw != 0:
		s.rowNZ[r]++
	case old != 0 && nw == 0:
		s.rowNZ[r]--
	}

	// Unsubsampled small row.
	old = s.smallC[col2]
	nw = s.fp.Add(old, dv)
	s.smallC[col2] = nw
	switch {
	case old == 0 && nw != 0:
		s.smallNZ++
	case old != 0 && nw == 0:
		s.smallNZ--
	}

	s.exact.Update(key, v)
	s.rough.Update(key, v)
}

// Estimate returns L̃0 with Theorem 10's contract: exact (whp) when
// L0 ≤ 100, the 2K-counter inversion while L0 < K/16, and the Figure 4
// row estimator above, with R supplied by the rough estimator.
func (s *Sketch) Estimate() (float64, error) {
	k := s.cfg.K
	k2 := 2 * k
	// Small regimes, exactly as Section 3.3 transplanted by Section 4.
	// The paper's switch point is K/16, which presumes K/16 ≫ 100; for
	// small K we keep the exact structure authoritative up to its
	// promise, so the switch point is max(K/16, 2·ExactCap).
	smallLimit := float64(k) / 16
	if smallLimit < 2*ExactCap {
		smallLimit = 2 * ExactCap
	}
	if s.smallNZ < k2 {
		fb := ballsbins.Invert(s.smallNZ, k2)
		if fb < smallLimit {
			if ex := s.exact.Estimate(); ex < ExactCap && fb < 2*ExactCap {
				return float64(ex), nil
			}
			return fb, nil
		}
	}
	// Figure 4 estimator: row i* = log(16R/K), scale 2^{i*+1}.
	r := s.rough.Estimate()
	if r == 0 {
		// Rough estimator says tiny but the small row says big:
		// inconsistent state possible only inside the rough failure
		// probability; fall back to the small row's inversion.
		return ballsbins.Invert(s.smallNZ, k2), nil
	}
	row := 0
	if ratio := 16 * float64(r) / float64(k); ratio > 1 {
		row = int(math.Floor(math.Log2(ratio)))
	}
	if row > int(s.cfg.LogN) {
		row = int(s.cfg.LogN)
	}
	t := s.rowNZ[row]
	if t == k {
		return 0, ErrSaturated
	}
	return math.Exp2(float64(row+1)) * ballsbins.Invert(t, k), nil
}

// MergeFrom merges another sketch built with identical randomness:
// all Lemma 6 counters are linear over F_p, so cell-wise addition
// yields the sketch of the summed frequency vectors.
func (s *Sketch) MergeFrom(o *Sketch) {
	if s.cfg.K != o.cfg.K || s.cfg.LogN != o.cfg.LogN || s.fp.P != o.fp.P {
		panic("l0core: merge of incompatible sketches")
	}
	for r := range s.rows {
		nz := 0
		for j := range s.rows[r] {
			s.rows[r][j] = s.fp.Add(s.rows[r][j], o.rows[r][j])
			if s.rows[r][j] != 0 {
				nz++
			}
		}
		s.rowNZ[r] = nz
	}
	nz := 0
	for j := range s.smallC {
		s.smallC[j] = s.fp.Add(s.smallC[j], o.smallC[j])
		if s.smallC[j] != 0 {
			nz++
		}
	}
	s.smallNZ = nz
	s.exact.MergeFrom(o.exact)
	// The rough estimator's per-bucket counters are likewise linear.
	if len(s.rough.cnt) != len(o.rough.cnt) || s.rough.fp.p != o.rough.fp.p {
		panic("l0core: merge of incompatible rough estimators")
	}
	for j := range s.rough.cnt {
		for t := range s.rough.cnt[j] {
			nz := 0
			for b := range s.rough.cnt[j][t] {
				s.rough.cnt[j][t][b] = s.rough.fp.add(s.rough.cnt[j][t][b], o.rough.cnt[j][t][b])
				if s.rough.cnt[j][t][b] != 0 {
					nz++
				}
			}
			s.rough.nonzero[j][t] = nz
		}
		s.rough.refreshZ(j)
	}
}

// Reset returns the sketch to its freshly constructed state without
// redrawing hash functions, the prime, or the vector u, so a scratch
// sketch can be pooled and reused across merge-and-estimate passes.
func (s *Sketch) Reset() {
	for r := range s.rows {
		clear(s.rows[r])
	}
	clear(s.rowNZ)
	clear(s.smallC)
	s.smallNZ = 0
	s.exact.Reset()
	s.rough.Reset()
}

// SpaceBits charges each Lemma 6 counter at ⌈log2 p⌉ =
// log K + loglog mM + O(1) bits — Theorem 10's
// O(ε⁻²·log n·(log 1/ε + loglog mM)) — plus the small row, the exact
// structure, the rough estimator, seeds, and u (K·log p bits; the
// paper generates u from a short seed via Theorem 7's family, we store
// it explicitly and charge it).
func (s *Sketch) SpaceBits() int {
	perCell := 0
	for p := s.fp.P; p > 1; p >>= 1 {
		perCell++
	}
	total := len(s.rows) * s.cfg.K * perCell
	total += len(s.smallC) * perCell
	total += len(s.u) * perCell
	total += s.exact.SpaceBits() + s.rough.SpaceBits()
	total += s.h1.SeedBits() + s.h2.SeedBits() + s.h3.SeedBits() + s.h4.SeedBits()
	return total
}

// Amplified medians independent copies (Theorem 10's 2/3 success
// probability amplified by repetition).
type Amplified struct {
	copies []*Sketch
}

// NewAmplified builds c independent copies.
func NewAmplified(c int, cfg Config, rng *rand.Rand) *Amplified {
	if c < 1 {
		panic("l0core: need at least one copy")
	}
	a := &Amplified{copies: make([]*Sketch, c)}
	for i := range a.copies {
		a.copies[i] = NewSketch(cfg, rand.New(rand.NewSource(rng.Int63())))
	}
	return a
}

// Update feeds all copies.
func (a *Amplified) Update(key uint64, v int64) {
	for _, s := range a.copies {
		s.Update(key, v)
	}
}

// Estimate returns the median of the copies' estimates.
func (a *Amplified) Estimate() (float64, error) {
	vals := make([]float64, 0, len(a.copies))
	var lastErr error
	for _, s := range a.copies {
		v, err := s.Estimate()
		if err != nil {
			lastErr = err
			continue
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0, lastErr
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m], nil
	}
	return (vals[m-1] + vals[m]) / 2, nil
}

// SpaceBits sums the copies.
func (a *Amplified) SpaceBits() int {
	total := 0
	for _, s := range a.copies {
		total += s.SpaceBits()
	}
	return total
}
