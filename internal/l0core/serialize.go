package l0core

import "repro/internal/binenc"

// AppendState serializes the L0 sketch's dynamic counter state (matrix
// rows, unsubsampled row, Lemma 8 buckets, RoughL0 buckets). Hash
// functions, the prime p, and the vector u are all reconstructed from
// the seed by the caller; derived counts are recomputed on restore.
func (s *Sketch) AppendState(w *binenc.Writer) {
	w.Uvarint(uint64(s.cfg.K))
	w.Uvarint(uint64(s.cfg.LogN))
	w.Uvarint(s.fp.P) // sanity only: p must reproduce from the seed
	for _, row := range s.rows {
		w.Uints(row)
	}
	w.Uints(s.smallC)
	appendExact(w, s.exact)
	appendRough(w, s.rough)
}

// RestoreState loads state produced by AppendState into a sketch built
// from the same Config and seed.
func (s *Sketch) RestoreState(r *binenc.Reader) error {
	if k := r.Uvarint(); r.Err() == nil && int(k) != s.cfg.K {
		return binenc.ErrCorrupt
	}
	if ln := r.Uvarint(); r.Err() == nil && uint(ln) != s.cfg.LogN {
		return binenc.ErrCorrupt
	}
	if p := r.Uvarint(); r.Err() == nil && p != s.fp.P {
		// Different p means the seed or config differs: restoring
		// counters would silently corrupt every estimate.
		return binenc.ErrCorrupt
	}
	for ri := range s.rows {
		row := r.Uints(s.cfg.K)
		if r.Err() != nil {
			return r.Err()
		}
		if len(row) != s.cfg.K {
			return binenc.ErrCorrupt
		}
		nz := 0
		for j, v := range row {
			if v >= s.fp.P {
				return binenc.ErrCorrupt
			}
			s.rows[ri][j] = v
			if v != 0 {
				nz++
			}
		}
		s.rowNZ[ri] = nz
	}
	small := r.Uints(2 * s.cfg.K)
	if r.Err() != nil {
		return r.Err()
	}
	if len(small) != 2*s.cfg.K {
		return binenc.ErrCorrupt
	}
	s.smallNZ = 0
	for j, v := range small {
		if v >= s.fp.P {
			return binenc.ErrCorrupt
		}
		s.smallC[j] = v
		if v != 0 {
			s.smallNZ++
		}
	}
	if err := restoreExact(r, s.exact); err != nil {
		return err
	}
	return restoreRough(r, s.rough)
}

func appendExact(w *binenc.Writer, e *ExactSmallL0) {
	w.Uvarint(uint64(len(e.cnt)))
	for _, trial := range e.cnt {
		w.Uints(trial)
	}
}

func restoreExact(r *binenc.Reader, e *ExactSmallL0) error {
	if n := r.Uvarint(); r.Err() != nil || int(n) != len(e.cnt) {
		if r.Err() != nil {
			return r.Err()
		}
		return binenc.ErrCorrupt
	}
	for t := range e.cnt {
		trial := r.Uints(e.buckets)
		if r.Err() != nil {
			return r.Err()
		}
		if len(trial) != e.buckets {
			return binenc.ErrCorrupt
		}
		nz := 0
		for b, v := range trial {
			if v >= e.fp.P {
				return binenc.ErrCorrupt
			}
			e.cnt[t][b] = v
			if v != 0 {
				nz++
			}
		}
		e.nonzero[t] = nz
	}
	return nil
}

func appendRough(w *binenc.Writer, e *RoughL0Estimator) {
	w.Uvarint(uint64(len(e.cnt)))
	w.Uvarint(uint64(len(e.bucketH)))
	for _, lvl := range e.cnt {
		for _, trial := range lvl {
			w.Uints(trial)
		}
	}
}

func restoreRough(r *binenc.Reader, e *RoughL0Estimator) error {
	levels := r.Uvarint()
	trials := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if int(levels) != len(e.cnt) || int(trials) != len(e.bucketH) {
		return binenc.ErrCorrupt
	}
	for j := range e.cnt {
		for t := range e.cnt[j] {
			trial := r.Uints(e.buckets)
			if r.Err() != nil {
				return r.Err()
			}
			if len(trial) != e.buckets {
				return binenc.ErrCorrupt
			}
			nz := 0
			for b, v := range trial {
				if v >= e.fp.p {
					return binenc.ErrCorrupt
				}
				e.cnt[j][t][b] = v
				if v != 0 {
					nz++
				}
			}
			e.nonzero[j][t] = nz
		}
		e.refreshZ(j)
	}
	return nil
}
