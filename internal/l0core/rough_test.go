package l0core

import (
	"math/rand"
	"testing"
)

// TestRoughL0Estimator is experiment E9: Theorem 11's constant-factor
// band. We check (a) the paper-literal coarse output sits in
// (L0/220, L0/2] and (b) the refined Estimate gives L0 ≤ R ≤ 64·L0,
// each in at least 80% of trials (Theorem 11 promises 9/16; the
// defaults do much better).
func TestRoughL0Estimator(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	for _, l0 := range []int{64, 1024, 16384, 262144} {
		const trials = 15
		okCoarse, okRefined := 0, 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(300*int64(l0) + int64(trial)))
			e := NewRoughL0(RoughL0Config{LogN: 32}, rng)
			for i := 0; i < l0; i++ {
				e.Update(rng.Uint64(), int64(rng.Intn(9)+1))
			}
			if c := float64(e.EstimateCoarse()); c > float64(l0)/220 && c <= float64(l0)/2 {
				okCoarse++
			}
			if r := float64(e.Estimate()); r >= float64(l0) && r <= 64*float64(l0) {
				okRefined++
			}
		}
		if okCoarse < trials*8/10 {
			t.Errorf("L0=%d: coarse band held %d/%d", l0, okCoarse, trials)
		}
		if okRefined < trials*8/10 {
			t.Errorf("L0=%d: refined band held %d/%d", l0, okRefined, trials)
		}
	}
}

func TestRoughL0WithDeletions(t *testing.T) {
	// Insert 100k items, delete 90k of them: the estimator must track
	// the live count (10k), not the update volume.
	rng := rand.New(rand.NewSource(310))
	e := NewRoughL0(RoughL0Config{LogN: 32}, rng)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = rng.Uint64()
		e.Update(keys[i], 5)
	}
	for i := 0; i < 90000; i++ {
		e.Update(keys[i], -5)
	}
	const live = 10000
	r := float64(e.Estimate())
	if r < live || r > 64*live {
		t.Errorf("after deletions: R=%v want within [%d, %d]", r, live, 64*live)
	}
}

func TestRoughL0EmptyAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	e := NewRoughL0(RoughL0Config{LogN: 32}, rng)
	if e.Estimate() != 0 {
		t.Error("empty structure should estimate 0")
	}
	if e.EstimateCoarse() != 1 {
		t.Error("paper-literal coarse output for empty is 1")
	}
	// A handful of items: no level reports > 8 (whp), so Estimate
	// remains 0 and the caller's small-L0 regime governs.
	for i := 0; i < 5; i++ {
		e.Update(rng.Uint64(), 1)
	}
	if got := e.Estimate(); got != 0 {
		t.Errorf("5 items should stay below the report threshold, got %d", got)
	}
}

func TestRoughL0FullCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	e := NewRoughL0(RoughL0Config{LogN: 32}, rng)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = rng.Uint64()
		e.Update(keys[i], 3)
	}
	for _, k := range keys {
		e.Update(k, -3)
	}
	if got := e.Estimate(); got != 0 {
		t.Errorf("fully cancelled stream: estimate %d want 0", got)
	}
	if e.z != 0 {
		t.Errorf("report word should be clear, got %b", e.z)
	}
}

func TestRoughL0PaperConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("large constant-factor configuration")
	}
	// The paper's C=141, δ=1/16 must satisfy the same bands.
	rng := rand.New(rand.NewSource(313))
	e := NewRoughL0(RoughL0Config{LogN: 32, C: 141, Delta: 1.0 / 16}, rng)
	const l0 = 20000
	for i := 0; i < l0; i++ {
		e.Update(rng.Uint64(), 1)
	}
	c := float64(e.EstimateCoarse())
	if c <= l0/220.0 || c > l0/2.0 {
		t.Errorf("paper constants: coarse %v outside (L0/220, L0/2]", c)
	}
}

func TestRoughL0LevelEstimateExact(t *testing.T) {
	// Items are split by lsb(h(x)); each level's Lemma 8 count must
	// equal that substream's live count while ≤ C. Verify totals.
	rng := rand.New(rand.NewSource(314))
	e := NewRoughL0(RoughL0Config{LogN: 16, C: 64}, rng)
	const n = 60 // small enough that every level is within its promise
	for i := 0; i < n; i++ {
		e.Update(rng.Uint64(), 1)
	}
	total := 0
	for j := 0; j <= 16; j++ {
		total += e.LevelEstimate(j)
	}
	if total != n {
		t.Errorf("level counts sum to %d want %d", total, n)
	}
}

func TestRoughL0ConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	for _, cfg := range []RoughL0Config{
		{LogN: 0},
		{LogN: 63},
		{LogN: 32, C: 5}, // below the >8 threshold
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewRoughL0(cfg, rng)
		}()
	}
}

func TestRoughL0SpaceGrowsWithLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(316))
	s16 := NewRoughL0(RoughL0Config{LogN: 16}, rng).SpaceBits()
	s32 := NewRoughL0(RoughL0Config{LogN: 32}, rng).SpaceBits()
	if s32 <= s16 || s32 > 3*s16 {
		t.Errorf("space should grow ~linearly in log n: %d -> %d", s16, s32)
	}
}

func BenchmarkRoughL0Update(b *testing.B) {
	e := NewRoughL0(RoughL0Config{LogN: 32}, rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i)*2654435761, 1)
	}
}

func BenchmarkRoughL0Estimate(b *testing.B) {
	e := NewRoughL0(RoughL0Config{LogN: 32}, rand.New(rand.NewSource(1)))
	for i := 0; i < 100000; i++ {
		e.Update(uint64(i)*2654435761, 1)
	}
	var r uint64
	for i := 0; i < b.N; i++ {
		r += e.Estimate()
	}
	_ = r
}
