package hashfn

import (
	"math/bits"
	"math/rand"
)

// Tabulation32 is mixed tabulation hashing with 32-bit table entries,
// for codomains up to 2^31: the balls-and-bins stages of the sketches
// hash into at most 2K ≤ 2^22 bins, so 32 output bits leave the
// per-bin probability bias below 2^-9 relative — negligible against
// every ε in use — while halving the dominant constant in the fast
// sketches' space (the tables are the largest single component of a
// FastSketch copy; see EXPERIMENTS.md §E1).
//
// Construction mirrors MixedTabulation: 8 input characters plus 4
// derived characters from the first-pass value.
type Tabulation32 struct {
	tables  [8][256]uint32
	derived [4][256]uint32
	r       uint64
}

// NewTabulation32 draws a random compact mixed-tabulation function
// with range r (which must be ≤ 2^31).
func NewTabulation32(rng *rand.Rand, r uint64) *Tabulation32 {
	if r == 0 || r > 1<<31 {
		panic("hashfn: Tabulation32 range must be in [1, 2^31]")
	}
	t := &Tabulation32{r: r}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = rng.Uint32()
		}
	}
	for i := range t.derived {
		for j := range t.derived[i] {
			t.derived[i][j] = rng.Uint32()
		}
	}
	return t
}

// Hash returns h(x) ∈ [0, Range()).
func (t *Tabulation32) Hash(x uint64) uint64 {
	v := t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
	d := v
	v ^= t.derived[0][byte(d)] ^
		t.derived[1][byte(d>>8)] ^
		t.derived[2][byte(d>>16)] ^
		t.derived[3][byte(d>>24)]
	hi, _ := bits.Mul64(uint64(v)<<32, t.r)
	return hi
}

// Range returns the codomain size.
func (t *Tabulation32) Range() uint64 { return t.r }

// SeedBits returns the table payload: 12 tables × 256 × 32 bits.
func (t *Tabulation32) SeedBits() int { return 12 * 256 * 32 }
