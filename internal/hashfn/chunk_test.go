package hashfn

import (
	"math/rand"
	"testing"
)

// TestChunkMethodsMatchScalar pins every chunk-evaluation method to
// its scalar counterpart across input magnitudes, including the
// boundaries of HashChunk32's hoisted-table tiers.
func TestChunkMethodsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tw := NewTwoWise(rng, 1<<20)
	tab := NewTabulation32(rng, 1<<18)

	cases := [][]uint64{
		{0},
		{1, 2, 3, 255, 256},
		{1<<24 - 1, 1 << 24, 1<<24 + 1},
		{1<<32 - 1, 1 << 32, 1<<32 + 1},
		nil, // random mix filled below
	}
	mix := make([]uint64, 300)
	for i := range mix {
		mix[i] = rng.Uint64() >> uint(rng.Intn(64))
	}
	cases[len(cases)-1] = mix

	for ci, xs := range cases {
		out64 := make([]uint64, len(xs))
		red := make([]uint64, len(xs))
		ReduceChunk(xs, red)

		tw.HashFieldChunk(xs, out64)
		for i, x := range xs {
			if out64[i] != tw.HashField(x) {
				t.Fatalf("case %d: HashFieldChunk[%d] mismatch", ci, i)
			}
		}
		tw.HashFieldChunkReduced(red, out64)
		for i, x := range xs {
			if out64[i] != tw.HashField(x) {
				t.Fatalf("case %d: HashFieldChunkReduced[%d] mismatch", ci, i)
			}
		}
		tw.HashChunk(xs, out64)
		for i, x := range xs {
			if out64[i] != tw.Hash(x) {
				t.Fatalf("case %d: HashChunk[%d] mismatch", ci, i)
			}
		}
		tw.HashChunkReduced(red, out64)
		for i, x := range xs {
			if out64[i] != tw.Hash(x) {
				t.Fatalf("case %d: HashChunkReduced[%d] mismatch", ci, i)
			}
		}
		out32 := make([]int32, len(xs))
		tab.HashChunk32(xs, out32)
		for i, x := range xs {
			if uint64(out32[i]) != tab.Hash(x) {
				t.Fatalf("case %d: HashChunk32[%d] = %d want %d", ci, i, out32[i], tab.Hash(x))
			}
		}
	}
}
