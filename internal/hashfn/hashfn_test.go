package hashfn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/prime"
)

// families under test, constructed fresh per trial.
func allFamilies(rng *rand.Rand, r uint64) map[string]Family {
	fams := map[string]Family{
		"TwoWise":         NewTwoWise(rng, r),
		"Poly(k=8)":       NewKWise(rng, 8, r),
		"Tabulation":      NewTabulation(rng, r),
		"MixedTabulation": NewMixedTabulation(rng, r),
	}
	if r <= 1<<31 {
		fams["Tabulation32"] = NewTabulation32(rng, r)
	}
	return fams
}

func TestRangeRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, r := range []uint64{1, 2, 7, 64, 1000, 1 << 20, 1 << 36} {
		for name, h := range allFamilies(rng, r) {
			if h.Range() != r {
				t.Errorf("%s: Range()=%d want %d", name, h.Range(), r)
			}
			for i := 0; i < 2000; i++ {
				if v := h.Hash(rng.Uint64()); v >= r {
					t.Fatalf("%s: Hash out of range: %d >= %d", name, v, r)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, h := range allFamilies(rng, 1<<20) {
		for i := uint64(0); i < 100; i++ {
			if h.Hash(i) != h.Hash(i) {
				t.Errorf("%s: Hash not deterministic", name)
			}
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Each family should spread sequential keys near-uniformly over
	// 64 buckets. Chi-square with 63 dof: reject above ~120 (p<1e-5).
	const buckets = 64
	const n = 64000
	rng := rand.New(rand.NewSource(12))
	for name, h := range allFamilies(rng, buckets) {
		counts := make([]float64, buckets)
		for i := 0; i < n; i++ {
			counts[h.Hash(uint64(i))]++
		}
		want := float64(n) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := c - want
			chi2 += d * d / want
		}
		if chi2 > 130 {
			t.Errorf("%s: chi-square %v too large for uniformity", name, chi2)
		}
	}
}

func TestTwoWisePairwiseIndependence(t *testing.T) {
	// Empirical check of pairwise independence: over random draws of h,
	// Pr[h(x)=a and h(y)=b] should be close to 1/r² for fixed x≠y,a,b.
	const r = 8
	const draws = 200000
	rng := rand.New(rand.NewSource(13))
	hits := 0
	for i := 0; i < draws; i++ {
		h := NewTwoWise(rng, r)
		if h.Hash(42) == 3 && h.Hash(1337) == 5 {
			hits++
		}
	}
	want := float64(draws) / (r * r)
	if got := float64(hits); math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("pairwise probability off: got %v hits want about %v", got, want)
	}
}

func TestPolyKWiseOnSmallField(t *testing.T) {
	// A degree-(k-1) polynomial over F_p restricted to k fixed points is
	// a bijection between coefficient vectors and value vectors, so the
	// joint distribution of (h(x1)..h(xk)) raw field values is uniform.
	// We verify the marginal pair-uniformity empirically for k=4.
	const draws = 120000
	rng := rand.New(rand.NewSource(14))
	hits := 0
	for i := 0; i < draws; i++ {
		h := NewKWise(rng, 4, 4)
		if h.Hash(7) == 1 && h.Hash(8) == 2 && h.Hash(9) == 3 {
			hits++
		}
	}
	want := float64(draws) / 64
	if got := float64(hits); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Errorf("3-point probability off: got %v want about %v", got, want)
	}
}

func TestPolyEvalFieldMatchesManualHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	h := NewKWise(rng, 5, 1<<16)
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint64()
		xr := prime.ReduceM61(x)
		want := uint64(0)
		pow := uint64(1)
		for _, c := range h.coeffs {
			want = prime.AddM61(want, prime.MulM61(c, pow))
			pow = prime.MulM61(pow, xr)
		}
		if got := h.EvalField(x); got != want {
			t.Fatalf("EvalField(%d)=%d want %d", x, got, want)
		}
	}
}

func TestSeedBits(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	if got := NewTwoWise(rng, 8).SeedBits(); got != 122 {
		t.Errorf("TwoWise.SeedBits=%d want 122", got)
	}
	if got := NewKWise(rng, 6, 8).SeedBits(); got != 6*61 {
		t.Errorf("Poly.SeedBits=%d want %d", got, 6*61)
	}
	if got := NewTabulation(rng, 8).SeedBits(); got != 8*256*64 {
		t.Errorf("Tabulation.SeedBits=%d", got)
	}
	if got := NewMixedTabulation(rng, 8).SeedBits(); got != 12*256*64 {
		t.Errorf("MixedTabulation.SeedBits=%d", got)
	}
	if got := NewTabulation32(rng, 8).SeedBits(); got != 12*256*32 {
		t.Errorf("Tabulation32.SeedBits=%d", got)
	}
}

func TestTabulation32RangeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, bad := range []uint64{0, 1<<31 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %d should panic", bad)
				}
			}()
			NewTabulation32(rng, bad)
		}()
	}
}

func TestKForEps(t *testing.T) {
	// Sanity: k grows slowly as eps shrinks and is always >= 2.
	prev := 0
	for _, eps := range []float64{0.5, 0.1, 0.01, 0.001} {
		k := KForEps(uint64(1/(eps*eps)), eps)
		if k < 2 {
			t.Errorf("KForEps(%v) = %d < 2", eps, k)
		}
		if k < prev {
			t.Errorf("KForEps not monotone at eps=%v", eps)
		}
		prev = k
	}
	// Figure 3's regime: eps=0.05, K=400 -> k should be modest (< 16).
	if k := KForEps(400, 0.05); k > 16 {
		t.Errorf("KForEps(400, 0.05) = %d unreasonably large", k)
	}
	for _, bad := range []float64{0, -0.5, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KForEps should panic for eps=%v", bad)
				}
			}()
			KForEps(100, bad)
		}()
	}
}

func TestHashFieldFullRange(t *testing.T) {
	// HashField must return values < 2^61-1 and its low bits must be
	// usable for lsb subsampling: level s hit with prob ~2^-(s+1).
	rng := rand.New(rand.NewSource(17))
	h := NewTwoWise(rng, 1)
	counts := make([]int, 6)
	const n = 1 << 18
	for i := 0; i < n; i++ {
		v := h.HashField(uint64(i))
		if v >= prime.Mersenne61 {
			t.Fatalf("HashField out of field: %d", v)
		}
		s := 0
		for v&1 == 0 && s < 5 {
			v >>= 1
			s++
		}
		counts[s]++
	}
	for s := 0; s < 5; s++ {
		want := float64(n) / float64(uint64(2)<<uint(s))
		if got := float64(counts[s]); got < 0.9*want || got > 1.1*want {
			t.Errorf("lsb level %d: got %v want about %v", s, got, want)
		}
	}
}

func TestMix64(t *testing.T) {
	// Bijectivity on a sample: no collisions among 1e6 sequential keys.
	seen := make(map[uint64]struct{}, 1<<20)
	for i := uint64(0); i < 1<<20; i++ {
		v := Mix64(i, 99)
		if _, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = struct{}{}
	}
	// Different seeds give different streams.
	if Mix64(1, 2) == Mix64(1, 3) {
		t.Error("Mix64 ignores seed")
	}
	// Avalanche: flipping one input bit flips ~32 output bits on average.
	flips := 0
	const trials = 4096
	for i := 0; i < trials; i++ {
		a := Mix64(uint64(i), 7)
		b := Mix64(uint64(i)^(1<<uint(i%64)), 7)
		flips += popcount(a ^ b)
	}
	avg := float64(flips) / trials
	if avg < 28 || avg > 36 {
		t.Errorf("Mix64 avalanche %.1f bits, want about 32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestZeroRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, f := range []func(){
		func() { NewTwoWise(rng, 0) },
		func() { NewKWise(rng, 4, 0) },
		func() { NewTabulation(rng, 0) },
		func() { NewMixedTabulation(rng, 0) },
		func() { NewKWise(rng, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkTwoWise(b *testing.B) {
	h := NewTwoWise(rand.New(rand.NewSource(1)), 1<<20)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkPolyK8(b *testing.B) {
	h := NewKWise(rand.New(rand.NewSource(1)), 8, 1<<20)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkTabulation(b *testing.B) {
	h := NewTabulation(rand.New(rand.NewSource(1)), 1<<20)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkMixedTabulation(b *testing.B) {
	h := NewMixedTabulation(rand.New(rand.NewSource(1)), 1<<20)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += h.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkMix64(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Mix64(uint64(i), 42)
	}
	_ = s
}
