// Package hashfn implements the hash families the KNW algorithms draw
// from (Section 1.2 of the paper uses H_k(U, V) for a k-wise
// independent family mapping U into V):
//
//   - TwoWise: pairwise-independent h(x) = (a·x + b) mod p — the h1, h2
//     (and h4 in Lemma 6) functions.
//   - Poly: k-wise independent degree-(k−1) Carter–Wegman polynomials
//     [11] over F_{2^61−1}, evaluated by Horner's rule in O(k) time —
//     the h3 functions of Figures 2 and 3, with
//     k = Θ(log(1/ε)/loglog(1/ε)).
//   - Tabulation / MixedTabulation: O(1)-evaluation families standing
//     in for the Pagh–Pagh [31] and Siegel [35] constructions used by
//     the paper's O(1)-worst-case-time variants (Lemma 5, Theorem 9).
//     See DESIGN.md §5(1) for why this substitution preserves the
//     behaviour the proofs consume.
//
// All families map uint64 keys to a caller-chosen range [0, R). Field
// values in [0, 2^61−1) are mapped to [0, R) by fixed-point scaling
// floor(v·R / 2^61), which introduces bias at most R/2^61 per point —
// negligible against every error term in the paper (R ≤ 2^36 in all
// uses). Every family reports its seed size in bits so experiments can
// account total sketch space exactly.
package hashfn

import (
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/prime"
)

// Family is a randomly drawn hash function h: [2^64] → [0, Range()).
type Family interface {
	// Hash returns h(x) ∈ [0, Range()).
	Hash(x uint64) uint64
	// Range returns the size of the codomain.
	Range() uint64
	// SeedBits returns the number of random bits defining h, for space
	// accounting (the paper charges hash seeds against the space bound:
	// h1, h2 cost O(log n) bits, h3 costs O(k·log K) bits).
	SeedBits() int
}

// scaleToRange maps a field element v ∈ [0, 2^61−1) to [0, r) by
// fixed-point multiplication: floor(v · r / 2^61).
func scaleToRange(v, r uint64) uint64 {
	hi, _ := bits.Mul64(v<<3, r) // v < 2^61 so v<<3 < 2^64; hi = floor(v·r/2^61)
	return hi
}

// TwoWise is a pairwise-independent function h(x) = (a·x + b) mod p
// scaled to [0, R), with p = 2^61−1. Storage is two field elements —
// the O(log n) bits the paper charges for h1 and h2.
type TwoWise struct {
	a, b uint64
	r    uint64
}

// NewTwoWise draws a random pairwise-independent function with range r.
func NewTwoWise(rng *rand.Rand, r uint64) *TwoWise {
	if r == 0 {
		panic("hashfn: zero range")
	}
	return &TwoWise{
		a: rng.Uint64()%(prime.Mersenne61-1) + 1, // a ≠ 0 keeps the map non-degenerate
		b: rng.Uint64() % prime.Mersenne61,
		r: r,
	}
}

// Hash returns h(x).
func (h *TwoWise) Hash(x uint64) uint64 {
	v := prime.AddM61(prime.MulM61(h.a, prime.ReduceM61(x)), h.b)
	return scaleToRange(v, h.r)
}

// HashField returns the un-scaled field element (a·x+b) mod p, giving a
// full 61 bits of pairwise-independent output. The F0/L0 algorithms use
// this for h1, whose output feeds lsb(·): level s is then hit with
// probability 2^{−(s+1)} exactly as the paper's [0, n−1] convention.
func (h *TwoWise) HashField(x uint64) uint64 {
	return prime.AddM61(prime.MulM61(h.a, prime.ReduceM61(x)), h.b)
}

// Range returns the codomain size.
func (h *TwoWise) Range() uint64 { return h.r }

// SeedBits returns 2·61 bits (a and b).
func (h *TwoWise) SeedBits() int { return 2 * 61 }

// Poly is a k-wise independent degree-(k−1) polynomial over F_{2^61−1}
// [Carter–Wegman]. Evaluation is O(k) word operations; the paper's
// reference algorithm accepts this because k = O(log(1/ε)/loglog(1/ε))
// is tiny, and the O(1)-time variants replace Poly with tabulation.
type Poly struct {
	coeffs []uint64 // degree k−1; coeffs[0] is the constant term
	r      uint64
}

// NewKWise draws a random k-wise independent polynomial with range r.
func NewKWise(rng *rand.Rand, k int, r uint64) *Poly {
	if k < 1 {
		panic("hashfn: independence k must be >= 1")
	}
	if r == 0 {
		panic("hashfn: zero range")
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = rng.Uint64() % prime.Mersenne61
	}
	// A nonzero leading coefficient keeps the polynomial's degree exactly
	// k−1; uniformity over the family is unaffected for k-wise claims.
	if k > 1 && coeffs[k-1] == 0 {
		coeffs[k-1] = 1
	}
	return &Poly{coeffs: coeffs, r: r}
}

// Hash evaluates the polynomial at x by Horner's rule and scales.
func (h *Poly) Hash(x uint64) uint64 {
	return scaleToRange(h.EvalField(x), h.r)
}

// EvalField returns the raw field element h(x) ∈ [0, 2^61−1).
func (h *Poly) EvalField(x uint64) uint64 {
	xr := prime.ReduceM61(x)
	acc := uint64(0)
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = prime.AddM61(prime.MulM61(acc, xr), h.coeffs[i])
	}
	return acc
}

// Range returns the codomain size.
func (h *Poly) Range() uint64 { return h.r }

// Independence returns k.
func (h *Poly) Independence() int { return len(h.coeffs) }

// SeedBits returns 61 bits per coefficient.
func (h *Poly) SeedBits() int { return 61 * len(h.coeffs) }

// KForEps returns the independence parameter
// k = ceil(c · log(K/ε) / loglog(K/ε)) prescribed by Lemma 2 for the
// balls-and-bins hash h3 (with K = 1/ε² bins the argument simplifies to
// Θ(log(1/ε)/loglog(1/ε)) as in Figure 3). The constant c is modest in
// practice; c = 1 already reproduces the paper's accuracy in all our
// experiments (Lemma 2's c is an artifact of the union-bound proof).
func KForEps(k uint64, eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("hashfn: eps out of range")
	}
	x := float64(k) / eps
	lg := math.Log2(x)
	llg := math.Log2(lg)
	if llg < 1 {
		llg = 1
	}
	kk := int(lg/llg) + 1
	if kk < 2 {
		kk = 2
	}
	return kk
}
