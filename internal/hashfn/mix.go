package hashfn

// Mix64 is a seeded bijective 64-bit finalizer (the SplitMix64 / Murmur3
// avalanche construction). The Figure 1 baselines that assume a "random
// oracle" ([20] FM, [16] LogLog, [17] Estan bitmaps, [19] HyperLogLog)
// are implemented with this mixer, exactly as those papers' authors did
// in practice; see DESIGN.md §5(5). Because the map is a bijection of
// the seeded input, distinct keys never collide — the idealization is
// only about the uniformity of the output bits.
func Mix64(x, seed uint64) uint64 {
	x += seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
