package hashfn

import (
	"math/bits"

	"repro/internal/prime"
)

// Chunk evaluation for the batched ingestion paths: one method call
// per chunk instead of one (possibly virtual) call per key, with the
// seeds and table bases hoisted across the loop. Each method is
// value-identical to calling its scalar counterpart per element.

// ReduceChunk writes ReduceM61(xs[i]) into out[i]. Several hash
// evaluations of the same key share one field reduction this way.
func ReduceChunk(xs []uint64, out []uint64) {
	for i, x := range xs {
		out[i] = prime.ReduceM61(x)
	}
}

// HashFieldChunk writes HashField(xs[i]) into out[i].
func (h *TwoWise) HashFieldChunk(xs []uint64, out []uint64) {
	a, b := h.a, h.b
	for i, x := range xs {
		out[i] = prime.AddM61(prime.MulM61(a, prime.ReduceM61(x)), b)
	}
}

// HashFieldChunkReduced is HashFieldChunk over pre-reduced inputs
// (red[i] = ReduceM61 of the key).
func (h *TwoWise) HashFieldChunkReduced(red []uint64, out []uint64) {
	a, b := h.a, h.b
	for i, x := range red {
		out[i] = prime.AddM61(prime.MulM61(a, x), b)
	}
}

// HashChunk writes Hash(xs[i]) into out[i].
func (h *TwoWise) HashChunk(xs []uint64, out []uint64) {
	a, b, r := h.a, h.b, h.r
	for i, x := range xs {
		v := prime.AddM61(prime.MulM61(a, prime.ReduceM61(x)), b)
		out[i] = scaleToRange(v, r)
	}
}

// HashChunkReduced is HashChunk over pre-reduced inputs.
func (h *TwoWise) HashChunkReduced(red []uint64, out []uint64) {
	a, b, r := h.a, h.b, h.r
	for i, x := range red {
		v := prime.AddM61(prime.MulM61(a, x), b)
		out[i] = scaleToRange(v, r)
	}
}

// HashChunk32 writes Hash(xs[i]) into out[i] (ranges ≤ 2^31, as
// everywhere Tabulation32 is used). The body restates Hash so the
// twelve table lookups sit directly in the loop; keep the two in sync.
// When every input in the chunk fits in 32 bits — always true for the
// balls-and-bins stages, whose inputs are h2 values in [0, K³) — the
// four high-byte lookups are the chunk constant ⊕_{c≥4} tables[c][0]
// and are hoisted out of the loop.
func (t *Tabulation32) HashChunk32(xs []uint64, out []int32) {
	var or uint64
	for _, x := range xs {
		or |= x
	}
	if or < 1<<24 {
		hi5 := t.tables[3][0] ^ t.tables[4][0] ^ t.tables[5][0] ^
			t.tables[6][0] ^ t.tables[7][0]
		for i, x := range xs {
			v := hi5 ^
				t.tables[0][byte(x)] ^
				t.tables[1][byte(x>>8)] ^
				t.tables[2][byte(x>>16)]
			d := v
			v ^= t.derived[0][byte(d)] ^
				t.derived[1][byte(d>>8)] ^
				t.derived[2][byte(d>>16)] ^
				t.derived[3][byte(d>>24)]
			hi, _ := bits.Mul64(uint64(v)<<32, t.r)
			out[i] = int32(hi)
		}
		return
	}
	if or < 1<<32 {
		hi4 := t.tables[4][0] ^ t.tables[5][0] ^ t.tables[6][0] ^ t.tables[7][0]
		for i, x := range xs {
			v := hi4 ^
				t.tables[0][byte(x)] ^
				t.tables[1][byte(x>>8)] ^
				t.tables[2][byte(x>>16)] ^
				t.tables[3][byte(x>>24)]
			d := v
			v ^= t.derived[0][byte(d)] ^
				t.derived[1][byte(d>>8)] ^
				t.derived[2][byte(d>>16)] ^
				t.derived[3][byte(d>>24)]
			hi, _ := bits.Mul64(uint64(v)<<32, t.r)
			out[i] = int32(hi)
		}
		return
	}
	for i, x := range xs {
		v := t.tables[0][byte(x)] ^
			t.tables[1][byte(x>>8)] ^
			t.tables[2][byte(x>>16)] ^
			t.tables[3][byte(x>>24)] ^
			t.tables[4][byte(x>>32)] ^
			t.tables[5][byte(x>>40)] ^
			t.tables[6][byte(x>>48)] ^
			t.tables[7][byte(x>>56)]
		d := v
		v ^= t.derived[0][byte(d)] ^
			t.derived[1][byte(d>>8)] ^
			t.derived[2][byte(d>>16)] ^
			t.derived[3][byte(d>>24)]
		hi, _ := bits.Mul64(uint64(v)<<32, t.r)
		out[i] = int32(hi)
	}
}
