package hashfn

import (
	"math/bits"
	"math/rand"
)

// Tabulation is simple tabulation hashing: the 64-bit key is split into
// 8 bytes, each indexes a table of random 64-bit words, and the lookups
// are XOR-combined. Evaluation is O(1) word operations.
//
// Role in the reproduction: the paper's O(1)-worst-case-time algorithms
// (Lemma 5, Theorem 9) replace the O(k)-evaluation Carter–Wegman
// polynomial h3 with families due to Pagh–Pagh [31] (z-wise independent
// on any fixed z-set with probability 1−O(1/z^c)) and Siegel [35]
// (v^{o(1)}-wise independent, O(1) eval). Both constructions are
// O(1)-time table-lookup schemes; simple tabulation is the practical
// member of that class. It is only 3-wise independent in the worst
// case, but Pătraşcu and Thorup ("The Power of Simple Tabulation
// Hashing", J.ACM 2012) prove it obeys Chernoff-type concentration for
// balls-and-bins occupancy — precisely the event classes (Lemmas 2–3,
// Theorem 1's T_r concentration) the paper needs high independence
// for. Experiment E10 cross-validates tabulation against genuine
// k-wise polynomials.
type Tabulation struct {
	tables [8][256]uint64
	r      uint64
}

// NewTabulation draws a random simple-tabulation function with range r.
func NewTabulation(rng *rand.Rand, r uint64) *Tabulation {
	if r == 0 {
		panic("hashfn: zero range")
	}
	t := &Tabulation{r: r}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = rng.Uint64()
		}
	}
	return t
}

// Hash returns h(x) ∈ [0, Range()).
func (t *Tabulation) Hash(x uint64) uint64 {
	return reduce64ToRange(t.hash64(x), t.r)
}

func (t *Tabulation) hash64(x uint64) uint64 {
	return t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
}

// Range returns the codomain size.
func (t *Tabulation) Range() uint64 { return t.r }

// SeedBits returns the table size: 8 tables × 256 entries × 64 bits.
// This is 128 KiB — constant with respect to n and ε, mirroring the
// v^Θ(1)-bits cost of Siegel's family, which the paper notes is
// "dominated by other parts of the algorithm" for ε of interest.
func (t *Tabulation) SeedBits() int { return 8 * 256 * 64 }

// MixedTabulation augments simple tabulation with derived characters
// (Dahlgaard–Knudsen–Rotenberg–Thorup, "Hashing for Statistics over
// K-Partitions", FOCS 2015): the first pass over the key's bytes also
// produces d extra pseudo-characters that index additional tables. The
// derived characters break the structured-key worst cases of simple
// tabulation and give fully-random-like behaviour on all the events we
// use; this is our stand-in for the Pagh–Pagh uniform-hashing family
// used in Lemma 5 (see DESIGN.md §5).
type MixedTabulation struct {
	tables  [8][256]uint64 // produce hash and derived characters
	derived [4][256]uint64 // indexed by derived characters
	r       uint64
}

// NewMixedTabulation draws a random mixed-tabulation function with range r.
func NewMixedTabulation(rng *rand.Rand, r uint64) *MixedTabulation {
	if r == 0 {
		panic("hashfn: zero range")
	}
	t := &MixedTabulation{r: r}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = rng.Uint64()
		}
	}
	for i := range t.derived {
		for j := range t.derived[i] {
			t.derived[i][j] = rng.Uint64()
		}
	}
	return t
}

// Hash returns h(x) ∈ [0, Range()).
func (t *MixedTabulation) Hash(x uint64) uint64 {
	v := t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
	// The high 32 bits of the first-pass value act as 4 derived
	// characters feeding the second table bank.
	d := uint32(v >> 32)
	v ^= t.derived[0][byte(d)] ^
		t.derived[1][byte(d>>8)] ^
		t.derived[2][byte(d>>16)] ^
		t.derived[3][byte(d>>24)]
	return reduce64ToRange(v, t.r)
}

// Range returns the codomain size.
func (t *MixedTabulation) Range() uint64 { return t.r }

// SeedBits returns the total table payload in bits.
func (t *MixedTabulation) SeedBits() int { return (8 + 4) * 256 * 64 }

// reduce64ToRange maps a uniform 64-bit value to [0, r) by the
// multiply-shift ("Lemire") reduction, preserving near-uniformity with
// bias ≤ r/2^64.
func reduce64ToRange(v, r uint64) uint64 {
	hi, _ := bits.Mul64(v, r)
	return hi
}
