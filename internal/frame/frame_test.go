package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// chunkReader returns at most n bytes per Read — the split-read
// torture harness for the incremental decoder.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := min(min(c.n, len(c.data)), len(p))
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// decode drains a whole frame into (name, keys) pairs.
func decode(t *testing.T, src io.Reader, bufSize int) (names []string, batches [][]uint64) {
	t.Helper()
	fr := NewReader(src, make([]byte, bufSize))
	if err := fr.ReadHeader(); err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	var dst [3]uint64 // deliberately tiny: forces multi-call draining
	for {
		name, count, err := fr.NextDoc()
		if errors.Is(err, io.EOF) {
			return names, batches
		}
		if err != nil {
			t.Fatalf("NextDoc: %v", err)
		}
		names = append(names, string(name))
		keys := make([]uint64, 0, count)
		for {
			n, err := fr.Keys(dst[:])
			if err != nil {
				t.Fatalf("Keys: %v", err)
			}
			if n == 0 {
				break
			}
			keys = append(keys, dst[:n]...)
		}
		if uint64(len(keys)) != count {
			t.Fatalf("doc %q: drained %d keys, header claimed %d", name, len(keys), count)
		}
		batches = append(batches, keys)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	docs := []struct {
		name string
		keys []uint64
	}{
		{"tenant/a", []uint64{1, 2, 3, 0xffffffffffffffff, 0}},
		{"", []uint64{42}}, // empty name: defer to ?store=
		{"tenant/b", nil},  // zero-count doc: store creation
		{"tenant/a", []uint64{7, 7, 7, 8, 9, 10, 11, 12, 13}},
	}
	buf := AppendHeader(nil)
	for _, d := range docs {
		buf = AppendDoc(buf, d.name, d.keys)
	}
	// Every read-chunk size from pathological to generous, and a scan
	// buffer near its minimum, must produce identical decodes.
	for _, chunk := range []int{1, 2, 7, 64, 1 << 20} {
		for _, scan := range []int{16, 64, 4096} {
			names, batches := decode(t, &chunkReader{data: buf, n: chunk}, scan)
			if len(names) != len(docs) {
				t.Fatalf("chunk=%d scan=%d: %d docs, want %d", chunk, scan, len(names), len(docs))
			}
			for i, d := range docs {
				if names[i] != d.name {
					t.Fatalf("chunk=%d scan=%d doc %d: name %q, want %q", chunk, scan, i, names[i], d.name)
				}
				if len(batches[i]) != len(d.keys) {
					t.Fatalf("chunk=%d scan=%d doc %d: %d keys, want %d", chunk, scan, i, len(batches[i]), len(d.keys))
				}
				for j, k := range d.keys {
					if batches[i][j] != k {
						t.Fatalf("chunk=%d scan=%d doc %d key %d: %#x, want %#x", chunk, scan, i, j, batches[i][j], k)
					}
				}
			}
		}
	}
}

func TestFrameEmpty(t *testing.T) {
	names, batches := decode(t, bytes.NewReader(AppendHeader(nil)), 64)
	if len(names) != 0 || len(batches) != 0 {
		t.Fatalf("header-only frame decoded %d docs", len(names))
	}
}

func TestFrameBadHeader(t *testing.T) {
	fr := NewReader(bytes.NewReader([]byte{0x00, 0x01}), make([]byte, 64))
	if err := fr.ReadHeader(); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad magic: err = %v, want ErrFrame", err)
	}
	fr = NewReader(bytes.NewReader(nil), make([]byte, 64))
	if err := fr.ReadHeader(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty body: err = %v, want unexpected EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	full := AppendDoc(AppendHeader(nil), "tenant/a", []uint64{1, 2, 3, 4})
	// Every proper prefix that cuts inside the doc must surface
	// truncation, never a clean EOF or a hang.
	headerLen := len(AppendHeader(nil))
	for cut := headerLen + 1; cut < len(full); cut++ {
		fr := NewReader(bytes.NewReader(full[:cut]), make([]byte, 32))
		if err := fr.ReadHeader(); err != nil {
			t.Fatalf("cut=%d: header: %v", cut, err)
		}
		var sawErr error
		for sawErr == nil {
			_, _, err := fr.NextDoc()
			if err != nil {
				sawErr = err
				break
			}
			var dst [8]uint64
			for {
				n, err := fr.Keys(dst[:])
				if err != nil {
					sawErr = err
					break
				}
				if n == 0 {
					break
				}
			}
		}
		if !errors.Is(sawErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want unexpected EOF", cut, sawErr)
		}
	}
}

func TestFrameOversizeNameRejected(t *testing.T) {
	buf := AppendHeader(nil)
	buf = AppendDoc(buf, string(make([]byte, MaxNameBytes+1)), nil)
	fr := NewReader(bytes.NewReader(buf), make([]byte, 64))
	if err := fr.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.NextDoc(); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize name: err = %v, want ErrFrame", err)
	}
}

func TestFrameUndrainedDocRejected(t *testing.T) {
	buf := AppendDoc(AppendHeader(nil), "a", []uint64{1, 2})
	fr := NewReader(bytes.NewReader(buf), make([]byte, 64))
	if err := fr.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.NextDoc(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.NextDoc(); !errors.Is(err, ErrFrame) {
		t.Fatalf("NextDoc with undrained keys: err = %v, want ErrFrame", err)
	}
}
