// Package frame is the binary ingest framing: a length-prefixed,
// pre-hashed key stream that decodes with zero per-key allocations.
// It is the third ingest Content-Type beside newline text and NDJSON
// (application/x-knw-frame; see internal/httpx), and the wire format
// the cluster forwarder ships to peers.
//
// Grammar (uvarints as in internal/binenc):
//
//	uvarint magic   ("KNWF" = 0x4b4e5746)
//	uvarint version (1)
//	zero or more docs, until EOF:
//	  uvarint name length (0 = use the request's ?store= target)
//	  name bytes
//	  uvarint key count
//	  key count × 8-byte little-endian uint64
//
// Keys are pre-hashed: the sender has already run the store's seeded
// hash (knw.NewHasher with the store's seed and universe bits — the
// documented wire contract of hasher.go), so the receiver feeds them
// straight into IngestHashed without touching the key bytes. Fixed
// 8-byte keys rather than varints keep the decode a single
// LittleEndian.Uint64 per key — no branch, no copy, no allocation —
// and make frame sizes predictable for batch planning.
//
// A frame that ends exactly on a doc boundary is complete; ending
// anywhere else is truncation, reported as an error wrapping
// io.ErrUnexpectedEOF. Docs may repeat a name; repeats append.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// Magic and Version head every frame.
	Magic   = 0x4b4e5746 // "KNWF"
	Version = 1
	// MaxNameBytes bounds a doc's name length claim so corrupt frames
	// cannot grow the scan buffer without bound. The store's own name
	// limit (256) is far below this; the slack keeps the codec
	// independent of store policy.
	MaxNameBytes = 1 << 12
	// KeyBytes is the fixed encoding width of one pre-hashed key.
	KeyBytes = 8
)

// ErrFrame wraps every malformed-frame failure (bad magic, oversized
// name claim, truncated structure) so callers can classify frame
// damage apart from transport errors.
var ErrFrame = errors.New("frame: malformed ingest frame")

// AppendHeader appends the frame header to buf.
func AppendHeader(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, Magic)
	return binary.AppendUvarint(buf, Version)
}

// AppendDoc appends one doc — name, count, fixed-width keys — to buf.
// An empty keys slice encodes a zero-count doc (store creation).
func AppendDoc(buf []byte, name string, keys []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
	}
	return buf
}

// Reader incrementally decodes a frame from src through a fixed scan
// buffer: fill, decode what is complete, compact, repeat. The caller
// owns the buffer (pool it across requests); nothing else allocates on
// the key path.
type Reader struct {
	src io.Reader
	buf []byte
	r   int // next undecoded byte
	w   int // end of valid bytes
	err error

	nameBuf   []byte // stable copy of the current doc's name
	remaining uint64 // keys left in the current doc
}

// NewReader decodes a frame from src using buf as the scan buffer. buf
// must hold at least one key (8 bytes); 64 KiB is a good size.
func NewReader(src io.Reader, buf []byte) *Reader {
	if len(buf) < 2*KeyBytes {
		buf = make([]byte, 64<<10)
	}
	return &Reader{src: src, buf: buf}
}

// ReadHeader consumes and validates the frame magic and version.
func (fr *Reader) ReadHeader() error {
	magic, err := fr.uvarint()
	if err != nil {
		return fr.fail(err, "reading magic")
	}
	if magic != Magic {
		return fr.set(fmt.Errorf("%w: bad magic %#x", ErrFrame, magic))
	}
	version, err := fr.uvarint()
	if err != nil {
		return fr.fail(err, "reading version")
	}
	if version != Version {
		return fr.set(fmt.Errorf("%w: unsupported version %d", ErrFrame, version))
	}
	return nil
}

// NextDoc advances to the next doc and returns its name and key count.
// The name aliases reader-owned scratch and is only valid until the
// next NextDoc call — convert or consume it first. At a clean end of
// frame it returns io.EOF; mid-structure truncation is an error
// wrapping io.ErrUnexpectedEOF. The previous doc's keys must be fully
// drained (Keys until 0) first.
func (fr *Reader) NextDoc() (name []byte, count uint64, err error) {
	if fr.err != nil {
		return nil, 0, fr.err
	}
	if fr.remaining > 0 {
		return nil, 0, fr.set(fmt.Errorf("%w: NextDoc with %d keys undrained", ErrFrame, fr.remaining))
	}
	// A frame may end here, and only here: EOF before the first byte of
	// a doc is the end of the stream, not damage.
	if fr.r == fr.w {
		if ferr := fr.fill(); ferr != nil {
			if errors.Is(ferr, io.EOF) {
				return nil, 0, io.EOF
			}
			return nil, 0, fr.set(ferr)
		}
	}
	nameLen, err := fr.uvarint()
	if err != nil {
		return nil, 0, fr.fail(err, "reading doc name length")
	}
	if nameLen > MaxNameBytes {
		return nil, 0, fr.set(fmt.Errorf("%w: name length %d exceeds %d", ErrFrame, nameLen, MaxNameBytes))
	}
	if err := fr.ensure(int(nameLen)); err != nil {
		return nil, 0, fr.fail(err, "reading doc name")
	}
	// Stage the name in reader-owned scratch: reading the count below
	// may compact the scan buffer, which would shift a direct view. One
	// bounded copy per doc, never per key.
	fr.nameBuf = append(fr.nameBuf[:0], fr.buf[fr.r:fr.r+int(nameLen)]...)
	fr.r += int(nameLen)
	count, err = fr.uvarint()
	if err != nil {
		return nil, 0, fr.fail(err, "reading key count")
	}
	fr.remaining = count
	return fr.nameBuf, count, nil
}

// Keys decodes up to len(dst) of the current doc's keys into dst and
// returns how many it wrote. A return of 0 with a nil error means the
// doc is exhausted (call NextDoc). Truncation mid-key stream is an
// error wrapping io.ErrUnexpectedEOF.
func (fr *Reader) Keys(dst []uint64) (int, error) {
	if fr.err != nil {
		return 0, fr.err
	}
	if fr.remaining == 0 || len(dst) == 0 {
		return 0, nil
	}
	want := uint64(len(dst))
	if want > fr.remaining {
		want = fr.remaining
	}
	// Decode whatever whole keys are already buffered; refill only when
	// the buffer has none, so a full buffer drains in one tight loop.
	if fr.w-fr.r < KeyBytes {
		if err := fr.ensure(KeyBytes); err != nil {
			return 0, fr.fail(err, "reading keys")
		}
	}
	if have := uint64((fr.w - fr.r) / KeyBytes); want > have {
		want = have
	}
	n := int(want)
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint64(fr.buf[fr.r:])
		fr.r += KeyBytes
	}
	fr.remaining -= want
	return n, nil
}

// uvarint decodes one varint, refilling as needed.
func (fr *Reader) uvarint() (uint64, error) {
	for {
		v, n := binary.Uvarint(fr.buf[fr.r:fr.w])
		if n > 0 {
			fr.r += n
			return v, nil
		}
		if n < 0 {
			return 0, fmt.Errorf("%w: varint overflow", ErrFrame)
		}
		if err := fr.fill(); err != nil {
			return 0, err
		}
	}
}

// ensure makes at least n undecoded bytes available at buf[r:w],
// compacting first and growing the buffer only for oversize names.
func (fr *Reader) ensure(n int) error {
	for fr.w-fr.r < n {
		if err := fr.fill(); err != nil {
			return err
		}
	}
	return nil
}

// fill compacts the buffer and reads more from src. It returns io.EOF
// only when zero new bytes will ever arrive.
func (fr *Reader) fill() error {
	if fr.r > 0 {
		fr.w = copy(fr.buf, fr.buf[fr.r:fr.w])
		fr.r = 0
	}
	if fr.w == len(fr.buf) {
		// Only names can require contiguous bytes beyond the initial
		// size, and MaxNameBytes bounds them.
		fr.buf = append(fr.buf, make([]byte, len(fr.buf))...)[:2*len(fr.buf)]
	}
	n, err := fr.src.Read(fr.buf[fr.w:])
	fr.w += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// fail converts an EOF that interrupts a structure into unexpected-EOF
// corruption and sticks the error.
func (fr *Reader) fail(err error, what string) error {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		err = fmt.Errorf("%w: truncated while %s: %w", ErrFrame, what, io.ErrUnexpectedEOF)
	}
	return fr.set(err)
}

func (fr *Reader) set(err error) error {
	if fr.err == nil {
		fr.err = err
	}
	return fr.err
}
