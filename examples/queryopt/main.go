// queryopt: cardinality estimation for query optimization — the
// paper's first listed application (Section 1, citing Selinger et al.:
// distinct-value counts drive "selecting a minimum-cost query plan",
// physical database design, and OLAP) — run end-to-end against a live
// knwd daemon that plays the role of the statistics catalog.
//
// The database streams each column's values into its own store over
// POST /v1/ingest while tables load. The optimizer costing
//
//	SELECT … FROM fact JOIN dim ON fact.k = dim.k
//
// then asks the daemon, not the tables:
//
//   - GET /v1/estimate?store=…        → per-column NDV (System R's
//     |F|·|D| / max(NDV(F.k), NDV(D.k)) join-size formula);
//   - GET /v1/query?stores=fact/k,dim/k → both NDVs plus the sketch
//     intersection |K_F ∩ K_D|. System R silently assumes key
//     containment (every key of one side joins); the intersection
//     measures the actual overlap, refining the estimate to
//     |F|·|D|·|K_F∩K_D| / (NDV(F.k)·NDV(D.k)) — which is what saves
//     the plan when only part of the key ranges ever meet.
//
// The demo loads a fact table whose keys only half-overlap the
// dimension's, compares System R vs the intersection-refined estimate
// against the exact join size, and picks the plan.
//
//	go run ./examples/queryopt
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"

	knw "repro"
	"repro/service"
	"repro/store"
)

const (
	eps       = 0.05
	factRows  = 300_000
	factKeys  = 60_000 // fact.k drawn uniformly from [0, factKeys)
	dimLo     = 30_000 // dim.k = [dimLo, dimLo+dimRows): unique PK,
	dimRows   = 60_000 // only half of it ever appears in fact
	regionLen = 12
)

func main() {
	srv, err := service.New(service.Config{Store: store.Config{
		Kind:    knw.KindConcurrentF0,
		Options: []knw.Option{knw.WithEpsilon(eps), knw.WithSeed(3)},
	}})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Println("== knwd up: the statistics catalog ==")

	// Load the tables, streaming each column into its store. Exact
	// truth is tracked locally only to score the estimates at the end —
	// a real system keeps no such state (that is the point).
	rng := rand.New(rand.NewSource(2026))
	factCount := make(map[int]int, factKeys)
	batch := make([]string, 0, 50_000)
	flush := func(name string) {
		if len(batch) > 0 {
			ingest(hs.URL, name, batch)
			batch = batch[:0]
		}
	}
	for i := 0; i < factRows; i++ {
		k := rng.Intn(factKeys)
		factCount[k]++
		batch = append(batch, fmt.Sprintf("k%d", k))
		if len(batch) == cap(batch) {
			flush("fact/k")
		}
	}
	flush("fact/k")
	for k := dimLo; k < dimLo+dimRows; k++ {
		batch = append(batch, fmt.Sprintf("k%d", k))
		if len(batch) == cap(batch) {
			flush("dim/k")
		}
	}
	flush("dim/k")
	for i := 0; i < 5_000; i++ {
		batch = append(batch, fmt.Sprintf("region-%d", rng.Intn(regionLen)))
	}
	flush("dim/region")
	fmt.Printf("loaded fact (%d rows) and dim (%d rows)\n\n", factRows, dimRows)

	// Exact values, for scoring only.
	exactNDVf := len(factCount)
	exactJoin := 0
	for k := dimLo; k < dimLo+dimRows; k++ {
		exactJoin += factCount[k] // dim.k is unique
	}

	// One query gives the optimizer everything about the join key pair.
	q := getQuery(hs.URL, "fact/k", "dim/k")
	ndvF, ndvD := q.Cardinalities[0], q.Cardinalities[1]
	fmt.Printf("catalog: NDV(fact.k) %.0f (exact %d), NDV(dim.k) %.0f (exact %d)\n",
		ndvF, exactNDVf, ndvD, dimRows)
	fmt.Printf("         |K_F ∩ K_D| %.0f (exact %d), containment %.0f%%\n\n",
		q.Intersection, dimRows/2, 100*q.Intersection/ndvD)

	// System R vs the intersection-refined estimate.
	systemR := float64(factRows) * float64(dimRows) / maxf(ndvF, ndvD)
	refined := float64(factRows) * float64(dimRows) * q.Intersection / (ndvF * ndvD)
	fmt.Printf("%-34s %12s %10s\n", "join-size estimate", "rows", "error")
	for _, row := range []struct {
		name string
		est  float64
	}{
		{"System R  |F|·|D|/max(NDV)", systemR},
		{"refined   ×|K_F∩K_D|/(NDV·NDV)", refined},
	} {
		fmt.Printf("%-34s %12.0f %9.1f%%\n", row.name, row.est,
			100*(row.est-float64(exactJoin))/float64(exactJoin))
	}
	fmt.Printf("%-34s %12d\n\n", "exact", exactJoin)
	if relErr := (refined - float64(exactJoin)) / float64(exactJoin); relErr > 0.25 || relErr < -0.25 {
		log.Fatalf("refined join estimate off by %.0f%% — outside any useful costing band", 100*relErr)
	}

	// The region predicate's selectivity from the low-NDV column, where
	// the sketch's exact small-count path answers precisely.
	ndvRegion := getEstimate(hs.URL, "dim/region")
	fmt.Printf("region predicate selectivity: 1/NDV(dim.region) = 1/%.0f = %.4f (true %.4f)\n",
		ndvRegion, 1/ndvRegion, 1.0/regionLen)

	plan := "dim ⋈ fact (build on dim)"
	if refined < float64(factRows) {
		plan = "fact ⋈ dim (probe the filtered dim)"
	}
	fmt.Printf("chosen plan: %s\n", plan)
	fmt.Println("\n=> catalog state: a few KiB per column, answering NDV, overlap, and join size in two GETs")
}

func ingest(base, name string, keys []string) {
	body := strings.NewReader(strings.Join(keys, "\n") + "\n")
	resp, err := http.Post(base+"/v1/ingest?store="+name, "text/plain", body)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("ingest %s: HTTP %d: %s", name, resp.StatusCode, out)
	}
}

type queryWire struct {
	Cardinalities []float64 `json:"cardinalities"`
	Union         float64   `json:"union"`
	Intersection  float64   `json:"intersection"`
	Jaccard       float64   `json:"jaccard"`
}

func getQuery(base, a, b string) queryWire {
	var qw queryWire
	getJSON(base+"/v1/query?stores="+a+","+b, &qw)
	return qw
}

func getEstimate(base, name string) float64 {
	var est struct {
		AllTime float64 `json:"all_time"`
	}
	getJSON(base+"/v1/estimate?store="+name, &est)
	return est.AllTime
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
