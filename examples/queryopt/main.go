// queryopt: cardinality estimation for query optimization — the
// paper's first listed application (Section 1, citing Selinger et al.:
// distinct-value counts drive "selecting a minimum-cost query plan",
// physical database design, and OLAP).
//
// A toy optimizer must choose a join order for
//
//	SELECT … FROM fact JOIN dim ON fact.k = dim.k WHERE dim.region = R
//
// The classic System-R estimate for the join size is
// |fact|·|dim| / max(NDV(fact.k), NDV(dim.k)), where NDV is the number
// of distinct values. Maintaining exact NDV per column requires a full
// index; one KNW sketch per column maintains it within ±ε in a few KiB
// while the table is ingested, including under streaming appends.
package main

import (
	"fmt"
	"math/rand"

	knw "repro"
	"repro/internal/baseline"
)

type column struct {
	name   string
	sketch *knw.F0
	exact  *baseline.Exact // kept here only to show the error; a real
	// system would not (that is the point)
	rows int
}

func newColumn(name string, seed int64) *column {
	return &column{
		name: name,
		// δ=0.2 keeps the copy count low; optimizer statistics tolerate
		// an occasional outlier, plans are re-costed constantly anyway.
		sketch: knw.NewF0(knw.WithEpsilon(0.05), knw.WithDelta(0.2), knw.WithSeed(seed)),
		exact:  baseline.NewExact(),
	}
}

func (c *column) ingest(v uint64) {
	c.sketch.Add(v)
	c.exact.Add(v)
	c.rows++
}

func main() {
	rng := rand.New(rand.NewSource(2026))

	// fact(k): 2M rows over 60k distinct join keys (Zipf-ish skew).
	factK := newColumn("fact.k", 1)
	zf := rand.NewZipf(rng, 1.3, 1, 60_000-1)
	for i := 0; i < 2_000_000; i++ {
		factK.ingest(zf.Uint64()*0x9e3779b97f4a7c15 + 1)
	}

	// dim(k): 80k rows, nearly unique key (it is the dimension PK).
	dimK := newColumn("dim.k", 2)
	for i := 0; i < 80_000; i++ {
		dimK.ingest(uint64(i)*0x9e3779b97f4a7c15 + 1)
	}

	// dim(region): 80k rows over 12 regions — low-NDV column where the
	// sketch's exact small-count path answers precisely.
	dimRegion := newColumn("dim.region", 3)
	for i := 0; i < 80_000; i++ {
		dimRegion.ingest(uint64(rng.Intn(12)) + 1)
	}

	fmt.Printf("%-12s %10s %12s %12s %8s\n", "column", "rows", "exact NDV", "sketch NDV", "err")
	for _, c := range []*column{factK, dimK, dimRegion} {
		est := c.sketch.Estimate()
		ex := c.exact.Estimate()
		fmt.Printf("%-12s %10d %12.0f %12.0f %7.2f%%\n",
			c.name, c.rows, ex, est, 100*(est-ex)/ex)
	}

	// Join size estimate (System R): |F|·|D| / max(NDV(F.k), NDV(D.k)).
	estJoin := float64(factK.rows) * float64(dimK.rows) /
		maxf(factK.sketch.Estimate(), dimK.sketch.Estimate())
	exactJoin := float64(factK.rows) * float64(dimK.rows) /
		maxf(factK.exact.Estimate(), dimK.exact.Estimate())
	fmt.Printf("\njoin cardinality estimate: %.3g (with exact NDV: %.3g, drift %.2f%%)\n",
		estJoin, exactJoin, 100*(estJoin-exactJoin)/exactJoin)

	// Selectivity of the region predicate from the low-NDV column.
	sel := 1 / dimRegion.sketch.Estimate()
	fmt.Printf("region predicate selectivity: 1/NDV = %.4f (true 1/12 = %.4f)\n",
		sel, 1.0/12)

	// The part a real optimizer cares about: sketch state is constant
	// in the table size, while exact NDV state grows with it.
	fmt.Printf("\nper-column statistics state: %d KiB, independent of table size\n",
		factK.sketch.SpaceBits()/8/1024)
	fmt.Printf("exact NDV set on fact.k: %d KiB now, and growing with every new key\n",
		factK.exact.SpaceBits()/8/1024)

	plan := "dim ⋈ fact (build on dim)"
	if estJoin < float64(factK.rows) {
		plan = "fact ⋈ dim (filtered dim first)"
	}
	fmt.Printf("chosen plan: %s\n", plan)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
