// datacleaning: find mostly-similar database columns with the L0
// sketch — the paper's data-cleaning application (Section 1, citing
// Dasu et al.: "L0-estimation … has applications to data cleaning to
// find columns that are mostly similar. Even if the rows in the two
// columns are in different orders, streaming algorithms for L0 can
// quickly identify similar columns") — run end-to-end against a live
// knwd daemon.
//
// Every column is its own store in one turnstile (L0) knwd: each
// replica/warehouse streams its column's values over POST /v1/ingest
// in whatever row order it has. Similarity then costs one GET per
// candidate pair:
//
//	GET /v1/query?stores=colA,colB
//
// whose pair.hamming field is the L0 distance between the columns —
// the sketch of A merged with a NEGATED sketch of B, so matching
// values cancel inside the linear counters and only the disagreements
// remain. No sort, no join, no column ever held in memory, and the
// per-column state is a few KiB regardless of column size.
//
// Over HTTP ingest every value arrives with weight +1, so the demo
// compares each column's value set; the library form
// (L0.Update(key, ±count) / MergeNegated) extends the same query to
// full multiset comparison with duplicates and deletions.
//
//	go run ./examples/datacleaning
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	knw "repro"
	"repro/service"
	"repro/store"
)

const eps = 0.05

type columnPair struct {
	name         string
	a, b         string // store names
	common       int
	onlyA, onlyB int
}

func main() {
	srv, err := service.New(service.Config{Store: store.Config{
		Kind:    knw.KindL0,
		Options: []knw.Option{knw.WithEpsilon(eps), knw.WithSeed(77)},
	}})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Println("== knwd up: turnstile (L0) store, one store per column ==")

	// Candidate column pairs with varying degrees of divergence, e.g.
	// "customers.email in two regional replicas", "orders.id vs
	// shipments.order_id", etc.
	pairs := []columnPair{
		{"replica_us vs replica_eu (in sync)", "col/us", "col/eu", 30_000, 0, 0},
		{"customers.email vs crm.email (drift)", "col/cust", "col/crm", 25_000, 300, 200},
		{"orders.id vs shipments.order_id", "col/ord", "col/ship", 22_000, 2_200, 80},
		{"users.phone vs staging.phone (stale)", "col/phone", "col/stage", 12_000, 6_000, 6_000},
	}
	for i, p := range pairs {
		ingest(hs.URL, p.a, columnValues(i, p.common, p.onlyA, "a"))
		ingest(hs.URL, p.b, columnValues(i, p.common, p.onlyB, "b"))
	}

	fmt.Printf("\n%-40s %9s %11s %11s %8s %10s\n",
		"column pair", "values", "true diff", "est diff", "jaccard", "similar?")
	for _, p := range pairs {
		q := getQuery(hs.URL, p.a, p.b)
		if q.Pair.Hamming == nil {
			log.Fatalf("%s: no hamming in response — store is not a turnstile kind", p.name)
		}
		trueDiff := p.onlyA + p.onlyB
		values := 2*p.common + trueDiff
		// Rule of thumb: columns are "mostly similar" when fewer than 2%
		// of their values differ.
		verdict := "DIVERGED"
		if *q.Pair.Hamming < 0.02*float64(values) {
			verdict = "similar"
		}
		fmt.Printf("%-40s %9d %11d %11.0f %8.3f %10s\n",
			p.name, values, trueDiff, *q.Pair.Hamming, q.Jaccard, verdict)
		slack := 1.5 * eps * (q.Cardinalities[0] + q.Cardinalities[1] + q.Union)
		if diff := *q.Pair.Hamming - float64(trueDiff); diff > slack || diff < -slack {
			log.Fatalf("%s: hamming %.0f vs true %d exceeds the inclusion–exclusion budget %.0f",
				p.name, *q.Pair.Hamming, trueDiff, slack)
		}
	}
	fmt.Println("\n=> one linear-time pass per column, one GET per pair; columns never leave their replicas")
}

// columnValues builds one column's value set: `common` values shared
// by both sides of pair i plus `extra` values unique to this side.
func columnValues(pair, common, extra int, side string) []string {
	vals := make([]string, 0, common+extra)
	for v := 0; v < common; v++ {
		vals = append(vals, fmt.Sprintf("p%d-c%d", pair, v))
	}
	for v := 0; v < extra; v++ {
		vals = append(vals, fmt.Sprintf("p%d-%s%d", pair, side, v))
	}
	return vals
}

func ingest(base, name string, keys []string) {
	body := strings.NewReader(strings.Join(keys, "\n") + "\n")
	resp, err := http.Post(base+"/v1/ingest?store="+name, "text/plain", body)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("ingest %s: HTTP %d: %s", name, resp.StatusCode, out)
	}
}

type queryWire struct {
	Cardinalities []float64 `json:"cardinalities"`
	Union         float64   `json:"union"`
	Jaccard       float64   `json:"jaccard"`
	Pair          struct {
		Hamming *float64 `json:"hamming"`
	} `json:"pair"`
}

func getQuery(base, a, b string) queryWire {
	resp, err := http.Get(base + "/v1/query?stores=" + a + "," + b)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("query %s,%s: HTTP %d: %s", a, b, resp.StatusCode, body)
	}
	var qw queryWire
	if err := json.Unmarshal(body, &qw); err != nil {
		log.Fatal(err)
	}
	return qw
}
