// datacleaning: find mostly-similar database columns with the L0
// sketch — the paper's data-cleaning application (Section 1, citing
// Dasu et al.: "L0-estimation … has applications to data cleaning to
// find columns that are mostly similar. Even if the rows in the two
// columns are in different orders, streaming algorithms for L0 can
// quickly identify similar columns").
//
// Setup: a warehouse holds several columns (multisets of values, each
// column streamed in its own arbitrary row order). For each candidate
// pair (A, B) we feed A's values with +1 and B's with −1 into one L0
// sketch; the estimate is then |{v : count_A(v) ≠ count_B(v)}| — the
// number of value slots where the columns disagree — without ever
// sorting, joining, or holding a column in memory.
package main

import (
	"fmt"

	knw "repro"
	"repro/internal/stream"
)

type columnPair struct {
	name         string
	common       int
	onlyA, onlyB int
}

func main() {
	// Candidate column pairs with varying degrees of divergence, e.g.
	// "customers.email in two regional replicas", "orders.id vs
	// shipments.order_id", etc.
	pairs := []columnPair{
		{"replica_us vs replica_eu (in sync)", 120_000, 0, 0},
		{"customers.email vs crm.email (drift)", 100_000, 1_200, 800},
		{"orders.id vs shipments.order_id", 90_000, 9_000, 300},
		{"users.phone vs staging.phone (stale)", 50_000, 25_000, 24_000},
	}

	fmt.Printf("%-42s %10s %12s %12s %10s\n",
		"column pair", "rows", "true diff", "est. diff", "similar?")
	for i, p := range pairs {
		cp := stream.NewColumnPair(p.common, p.onlyA, p.onlyB, int64(1000+i))

		sk := knw.NewL0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(int64(i+1)))
		n := stream.DrainTurnstile(cp, sk.Update)

		est := sk.Estimate()
		rows := p.common*2 + p.onlyA + p.onlyB
		// Rule of thumb: columns are "mostly similar" when fewer than
		// 2% of rows differ.
		verdict := "DIVERGED"
		if est < 0.02*float64(rows) {
			verdict = "similar"
		}
		fmt.Printf("%-42s %10d %12d %12.0f %10s\n",
			p.name, n, cp.TrueL0(), est, verdict)
	}

	// The merge form: stream each column once into its own sketch and
	// combine pairs later — O(columns) passes instead of O(pairs).
	fmt.Println("\nmerge form (one pass per column, pairwise diffs from sketches):")
	colA := knw.NewL0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(77))
	colB := knw.NewL0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(77)) // same seed: mergeable
	cp := stream.NewColumnPair(80_000, 500, 700, 5)
	stream.DrainTurnstile(cp, func(k uint64, v int64) {
		if v > 0 {
			colA.Update(k, v) // column A rows arrive as +1
		} else {
			colB.Update(k, -v) // column B rows arrive as +1 into its own sketch
		}
	})
	// diff = L0(A − B): negate B by merging a −1-weighted copy. The
	// counters are linear, so we just stream B again with −1 … which is
	// what Update(-v) gives us via a third sketch:
	diff := knw.NewL0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(77))
	cp2 := stream.NewColumnPair(80_000, 500, 700, 5) // regenerate the same columns
	stream.DrainTurnstile(cp2, diff.Update)          // +1 for A, −1 for B directly
	fmt.Printf("  true diff 1200, sketched diff %.0f (state: %d KiB per column)\n",
		diff.Estimate(), colA.SpaceBits()/8/1024)
}
