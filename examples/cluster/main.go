// The cluster example runs the acceptance scenario for knwd's cluster
// mode, in process: three nodes joined by a consistent-hash ring with
// replication factor 2, 100k keys ingested through a single node,
// scatter-gathered estimates within ε of the exact truth from every
// node. Then the membership story: a fourth node joins the live ring
// (epoch cutover + sketch handoff) and drains back out, with the
// estimates holding ε through both transitions — and finally one node
// is killed and the cluster keeps serving (and ingesting), flagging
// responses with the X-KNW-Partial header.
//
//	go run ./examples/cluster
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"

	knw "repro"
	"repro/cluster"
	"repro/service"
	"repro/store"
)

const (
	totalKeys   = 100_000
	replication = 2
	eps         = 0.05
)

func main() {
	// Bind the listeners first so every node can be handed the complete
	// peer list — the same order of operations a real deployment has
	// (addresses assigned, then daemons started). All nodes must share
	// kind, options, and seed: mergeability is what cluster mode runs on.
	const n = 3
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*service.Server, n)
	servers := make([]*httptest.Server, n)
	for i := range nodes {
		srv, err := service.New(service.Config{
			Store: store.Config{
				Kind:    knw.KindConcurrentF0,
				Options: []knw.Option{knw.WithEpsilon(eps), knw.WithSeed(42)},
			},
			Cluster: &cluster.Config{
				Self:        peers[i],
				Peers:       peers,
				Replication: replication,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = srv
		servers[i] = &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv.Handler()}}
		servers[i].Start()
		defer servers[i].Close()
	}
	fmt.Printf("== cluster up: %d nodes, R=%d ==\n", n, replication)
	for i, p := range peers {
		fmt.Printf("  node %c: %s\n", 'A'+i, p)
	}

	// 1. Ingest 100k keys through node A ONLY. The ring router spreads
	// every key to its 2 owner nodes; node A keeps just its own share.
	fmt.Printf("== ingest %d keys through node A only ==\n", totalKeys)
	for lo := 0; lo < totalKeys; lo += 10_000 {
		var body strings.Builder
		for i := lo; i < lo+10_000; i++ {
			fmt.Fprintf(&body, "user-%d\n", i)
		}
		resp, err := http.Post(peers[0]+"/v1/cluster/ingest?store=acme/users",
			"text/plain", strings.NewReader(body.String()))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("cluster ingest: HTTP %d", resp.StatusCode)
		}
	}
	for i := range nodes {
		est, err := nodes[i].Store().Estimate("acme/users")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %c local share ≈ %6.0f keys (%.0f%% of stream)\n",
			'A'+i, est.AllTime, 100*est.AllTime/totalKeys)
	}

	// 2. Scatter-gather: every node answers the merged union, within ε.
	fmt.Println("== merged estimates (scatter-gather from each node) ==")
	for i, p := range peers {
		est, partial := clusterEstimate(p, "acme/users")
		fmt.Printf("  node %c: all_time ≈ %6.0f (true %d, rel err %.2f%%, nodes %d/%d, partial=%q)\n",
			'A'+i, est.AllTime, totalKeys,
			100*math.Abs(est.AllTime-totalKeys)/totalKeys, est.NodesOK, est.Nodes, partial)
		if math.Abs(est.AllTime-totalKeys) > eps*totalKeys {
			log.Fatalf("node %c estimate outside ε", 'A'+i)
		}
	}

	// 3. Dynamic membership: a fourth node joins the LIVE ring. It boots
	// alone (its own one-member epoch-1 ring, like knwd -join does),
	// then any existing member coordinates the cutover: prepare the
	// epoch-2 descriptor, stream sketch envelopes to the new owner
	// (O(sketch size), not O(keys) — mergeability at work), commit.
	fmt.Println("== node D joins the live cluster ==")
	lnD, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	urlD := "http://" + lnD.Addr().String()
	srvD, err := service.New(service.Config{
		Store: store.Config{
			Kind:    knw.KindConcurrentF0,
			Options: []knw.Option{knw.WithEpsilon(eps), knw.WithSeed(42)},
		},
		Cluster: &cluster.Config{Self: urlD, Peers: []string{urlD}, Replication: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	serverD := &httptest.Server{Listener: lnD, Config: &http.Server{Handler: srvD.Handler()}}
	serverD.Start()
	defer serverD.Close()
	res := memberChange(peers[0], "join", urlD)
	fmt.Printf("  joined: epoch %d, %d members\n", res.Epoch, len(res.Members))
	est, _ := clusterEstimate(urlD, "acme/users")
	fmt.Printf("  node D merged ≈ %6.0f right after the cutover (rel err %.2f%%)\n",
		est.AllTime, 100*math.Abs(est.AllTime-totalKeys)/totalKeys)
	if math.Abs(est.AllTime-totalKeys) > eps*totalKeys {
		log.Fatal("estimate dipped below ε after the join")
	}
	localD, err := srvD.Store().Estimate("acme/users")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  node D local share ≈ %6.0f keys via handoff envelopes\n", localD.AllTime)

	// 4. And drains back out: leave hands D's slices to the surviving
	// owners before the epoch-3 commit drops it from routing (the same
	// path knwd -drain runs on SIGTERM).
	fmt.Println("== node D drains back out ==")
	res = memberChange(peers[0], "leave", urlD)
	fmt.Printf("  left: epoch %d, %d members\n", res.Epoch, len(res.Members))
	est, _ = clusterEstimate(peers[0], "acme/users")
	fmt.Printf("  node A merged ≈ %6.0f after the drain (rel err %.2f%%)\n",
		est.AllTime, 100*math.Abs(est.AllTime-totalKeys)/totalKeys)
	if math.Abs(est.AllTime-totalKeys) > eps*totalKeys {
		log.Fatal("estimate dipped below ε after the drain")
	}

	// 5. Kill node C. Every key was replicated on 2 of the 3 nodes, so
	// the union over A+B still covers the whole stream: estimates stay
	// within ε, and the response says which peer is missing.
	fmt.Println("== killing node C ==")
	servers[2].Close()
	est, partial := clusterEstimate(peers[0], "acme/users")
	fmt.Printf("  node A: all_time ≈ %6.0f (rel err %.2f%%), X-KNW-Partial: %q\n",
		est.AllTime, 100*math.Abs(est.AllTime-totalKeys)/totalKeys, partial)
	if partial == "" || math.Abs(est.AllTime-totalKeys) > eps*totalKeys {
		log.Fatal("degraded estimate missing partial header or outside ε")
	}

	// 6. Ingest keeps working degraded too: keys whose owner set
	// includes C land on their surviving owner, the response reports
	// what was lost where, and the estimate tracks the new truth.
	fmt.Println("== ingest 5k more keys with C dead ==")
	var body strings.Builder
	for i := 0; i < 5_000; i++ {
		fmt.Fprintf(&body, "late-%d\n", i)
	}
	resp, err := http.Post(peers[0]+"/v1/cluster/ingest?store=acme/users",
		"text/plain", strings.NewReader(body.String()))
	if err != nil {
		log.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  HTTP %d, X-KNW-Partial: %q\n  %s",
		resp.StatusCode, resp.Header.Get(cluster.PartialHeader), blob)
	est, _ = clusterEstimate(peers[1], "acme/users")
	newTruth := float64(totalKeys + 5_000)
	fmt.Printf("  node B merged ≈ %6.0f (true %.0f, rel err %.2f%%)\n",
		est.AllTime, newTruth, 100*math.Abs(est.AllTime-newTruth)/newTruth)
	if math.Abs(est.AllTime-newTruth) > eps*newTruth {
		log.Fatal("post-failure ingest lost keys beyond ε")
	}
	fmt.Println("== done: replication R=2 rode out a node failure ==")
}

// memberChange POSTs one join/leave through a member and returns the
// committed change result.
func memberChange(via, action, member string) cluster.ChangeResult {
	body, _ := json.Marshal(map[string]string{"url": member})
	resp, err := http.Post(via+"/v1/cluster/"+action, "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: HTTP %d: %s", action, member, resp.StatusCode, blob)
	}
	var res cluster.ChangeResult
	if err := json.Unmarshal(blob, &res); err != nil {
		log.Fatal(err)
	}
	return res
}

// clusterEstimate GETs one node's scatter-gathered estimate.
func clusterEstimate(base, name string) (cluster.Estimate, string) {
	resp, err := http.Get(base + "/v1/cluster/estimate?store=" + name)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("cluster estimate: HTTP %d: %s", resp.StatusCode, blob)
	}
	var est cluster.Estimate
	if err := json.Unmarshal(blob, &est); err != nil {
		log.Fatal(err)
	}
	return est, resp.Header.Get(cluster.PartialHeader)
}
