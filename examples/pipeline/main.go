// pipeline demonstrates the library's production ingestion shape: a
// sharded concurrent sketch behind the typed-key front door
// (Keyed[string]), fed micro-batches by many goroutines (one
// shard-lock acquisition per shard per batch), a reader goroutine
// taking periodic estimates from the pooled merge path, and a
// checkpoint/restore cycle through the self-describing envelope —
// the full write path a streaming analytics service would run.
//
// The stream is split into two halves. Half one is ingested, the
// wrapper is checkpointed with MarshalBinary, the checkpoint is
// reopened with knw.Open (which reads the concrete type off the
// envelope's kind tag, as after a process restart), and half two is
// ingested into the restored wrapper. The final estimate covers the
// whole stream.
package main

import (
	"encoding"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	knw "repro"
)

const (
	workers   = 8
	batchSize = 1024
	distinct  = 400_000
	updates   = 1_200_000
)

// ingest streams updates [lo, hi) into the sketch in micro-batches,
// as a partition consumer would. Keys are strings (user ids); the
// Keyed front-end hashes the whole batch and feeds the sharded batch
// path, so the typed layer costs one pass over the batch.
func ingest(c *knw.Keyed[string], lo, hi int, wg *sync.WaitGroup, progress *atomic.Int64) {
	defer wg.Done()
	batch := make([]string, 0, batchSize)
	flush := func() {
		c.AddBatch(batch)
		progress.Add(int64(len(batch)))
		batch = batch[:0]
	}
	for i := lo; i < hi; i++ {
		// Keys repeat (updates > distinct): real traffic re-sees items.
		batch = append(batch, "user-"+strconv.Itoa(i%distinct))
		if len(batch) == batchSize {
			flush()
		}
	}
	flush()
}

// runHalf ingests updates [lo, hi) with `workers` goroutines while a
// reader polls estimates.
func runHalf(c *knw.Keyed[string], lo, hi int) {
	var wg sync.WaitGroup
	var progress atomic.Int64
	per := (hi - lo + workers - 1) / workers
	for w := 0; w < workers; w++ {
		a := lo + w*per
		b := a + per
		if b > hi {
			b = hi
		}
		if a >= b {
			break
		}
		wg.Add(1)
		go ingest(c, a, b, &wg, &progress)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Periodic reads while writers run — Estimate merges the shards
	// into a pooled scratch sketch under the shard locks.
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			fmt.Printf("  progress %9d updates  estimate ≈ %.0f\n",
				progress.Load(), c.Estimate())
		}
	}
}

func main() {
	sharded := knw.NewConcurrentF0(workers,
		knw.WithEpsilon(0.05), knw.WithSeed(42), knw.WithCopies(3))
	c := knw.NewKeyed[string](sharded)

	fmt.Printf("phase 1: %d workers, batches of %d\n", workers, batchSize)
	runHalf(c, 0, updates/2)

	blob, err := c.Unwrap().(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint: %d bytes (envelope kind=%s + %d framed shard sections)\n",
		len(blob), sharded.Kind(), sharded.Shards())

	// Simulate a restart: Open reads the kind tag off the envelope and
	// rebuilds the right concrete type — the restore side no longer
	// needs to know what was checkpointed.
	est, err := knw.Open(blob)
	if err != nil {
		panic(err)
	}
	reshard := est.(*knw.ConcurrentF0)
	// Re-wrapping in Keyed re-derives the same hasher from the restored
	// seed and universe, so phase 2 hashes exactly like phase 1.
	restored := knw.NewKeyed[string](reshard)
	fmt.Printf("restored: %s with %d shards, estimate ≈ %.0f\n",
		est.Name(), reshard.Shards(), restored.Estimate())

	fmt.Println("phase 2: resuming ingestion on the restored sketch")
	runHalf(restored, updates/2, updates)

	got := restored.Estimate()
	fmt.Printf("final: estimate ≈ %.0f  (true distinct %d, rel.err %+.2f%%)\n",
		got, distinct, 100*(got-float64(distinct))/float64(distinct))
}
