// The service example drives knwd's HTTP API end to end, in process:
// it stands up two nodes (as httptest servers around service.Server),
// streams per-tenant keys into one, aggregates across both through
// /v1/snapshot + /v1/merge, shows the 409 a misconfigured peer gets,
// and restarts a node from its checkpoint to show estimates survive.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	knw "repro"
	"repro/service"
	"repro/store"
)

func main() {
	ckptDir, err := os.MkdirTemp("", "knwd-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	// Both nodes share kind, options, and — critically — the seed:
	// that is what makes their snapshots mergeable. Node A also keeps
	// a checkpoint directory.
	cfg := func(dir string) service.Config {
		return service.Config{
			Store: store.Config{
				Kind:    knw.KindConcurrentF0,
				Options: []knw.Option{knw.WithEpsilon(0.02), knw.WithSeed(42)},
			},
			CheckpointDir: dir,
		}
	}
	nodeA, err := service.New(cfg(ckptDir))
	if err != nil {
		log.Fatal(err)
	}
	nodeB, err := service.New(cfg(""))
	if err != nil {
		log.Fatal(err)
	}
	srvA := httptest.NewServer(nodeA.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(nodeB.Handler())
	defer srvB.Close()

	// 1. Per-tenant ingestion: each tenant's pods batch keys at their
	// local node. Tenant acme is split across both nodes (disjoint user
	// ranges) to set up the merge step.
	fmt.Println("== ingest ==")
	for tenant, n := range map[string]int{"acme": 30000, "globex": 12000, "initech": 4000, "umbrella": 800} {
		ingest(srvA.URL, tenant+"/users", keys(tenant, 0, n))
	}
	ingest(srvB.URL, "acme/users", keys("acme", 20000, 50000)) // overlaps [20000,30000)
	for _, st := range []string{"acme/users", "globex/users", "initech/users", "umbrella/users"} {
		fmt.Printf("  node A %-14s ≈ %.0f distinct\n", st, estimate(srvA.URL, st))
	}
	fmt.Printf("  node B %-14s ≈ %.0f distinct\n", "acme/users", estimate(srvB.URL, "acme/users"))

	// 2. Cross-node aggregation: pull A's envelope for acme/users and
	// fold it into B. The union de-duplicates the 10k overlapping keys.
	fmt.Println("== merge A → B ==")
	env := snapshot(srvA.URL, "acme/users")
	resp, err := http.Post(srvB.URL+"/v1/merge?store=acme/users", "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  merged %d envelope bytes: acme/users union ≈ %.0f (true 50000)\n",
		len(env), estimate(srvB.URL, "acme/users"))

	// 3. A peer with a different seed is rejected, not silently merged:
	// its hash functions differ, so folding its counters would corrupt
	// the estimate. The service answers 409 Conflict.
	fmt.Println("== foreign peer ==")
	foreign, _ := service.New(service.Config{Store: store.Config{
		Kind:    knw.KindConcurrentF0,
		Options: []knw.Option{knw.WithEpsilon(0.02), knw.WithSeed(7)},
	}})
	_ = foreign.Store().Ingest("acme/users", []string{"x", "y"})
	fenv, _ := foreign.Store().Snapshot("acme/users", nil)
	resp, err = http.Post(srvB.URL+"/v1/merge?store=acme/users", "application/octet-stream", bytes.NewReader(fenv))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  mismatched seed → HTTP %d: %s", resp.StatusCode, body)

	// 4. Restart: checkpoint node A, build a fresh server over the same
	// directory, and compare. The restored estimates are byte-identical
	// — the checkpoint is the same envelope format as /v1/snapshot.
	fmt.Println("== checkpoint / restart ==")
	if err := nodeA.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	srvA.Close()
	nodeA2, err := service.New(cfg(ckptDir))
	if err != nil {
		log.Fatal(err)
	}
	srvA2 := httptest.NewServer(nodeA2.Handler())
	defer srvA2.Close()
	for _, st := range []string{"acme/users", "globex/users", "initech/users", "umbrella/users"} {
		fmt.Printf("  restored %-14s ≈ %.0f distinct\n", st, estimate(srvA2.URL, st))
	}
}

// keys fabricates tenant-scoped user IDs for [lo, hi).
func keys(tenant string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s-user-%d", tenant, i))
	}
	return out
}

// ingest POSTs keys in newline-delimited batches of 4096.
func ingest(base, name string, ks []string) {
	for len(ks) > 0 {
		n := min(4096, len(ks))
		body := strings.Join(ks[:n], "\n")
		ks = ks[n:]
		resp, err := http.Post(base+"/v1/ingest?store="+name, "text/plain", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ingest %s: HTTP %d", name, resp.StatusCode)
		}
	}
}

// estimate GETs /v1/estimate and returns the all-time estimate.
func estimate(base, name string) float64 {
	resp, err := http.Get(base + "/v1/estimate?store=" + name)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var est store.Estimate
	if err := jsonDecode(resp.Body, &est); err != nil {
		log.Fatal(err)
	}
	return est.AllTime
}

// snapshot GETs the store's envelope bytes.
func snapshot(base, name string) []byte {
	resp, err := http.Get(base + "/v1/snapshot?store=" + name)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	env, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return env
}

func jsonDecode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	return dec.Decode(v)
}
