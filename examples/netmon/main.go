// netmon: network monitoring with distinct-element sketches — the
// paper's motivating application (Section 1: routers tracking distinct
// destination IPs and source-destination pairs, DDoS and port-scan
// detection, Estan et al.'s Code Red measurement).
//
// A synthetic router trace runs through three phases (benign traffic,
// a spoofed-source DDoS flood, a port scan). The monitor keeps one
// KNW F0 sketch per epoch of 10,000 packets for three statistics:
//
//   - distinct source IPs        (DDoS: spikes by an order of magnitude)
//   - distinct src-dst flows     (general situational awareness)
//   - distinct (src, dst-port)   (port scan: spikes while sources don't)
//
// and raises an alarm when an epoch's count exceeds a multiple of the
// trailing baseline — all in O(1) work per packet and a few KiB per
// epoch, no matter how fast the link is.
package main

import (
	"fmt"

	knw "repro"
	"repro/internal/stream"
)

const epochLen = 10_000

type epochSketches struct {
	srcs  *knw.F0
	flows *knw.F0
	scans *knw.F0
}

func newEpoch(seed int64) epochSketches {
	mk := func(s int64) *knw.F0 {
		return knw.NewF0(knw.WithEpsilon(0.1), knw.WithDelta(0.2), knw.WithSeed(s))
	}
	return epochSketches{srcs: mk(seed), flows: mk(seed + 1), scans: mk(seed + 2)}
}

func main() {
	trace := stream.NewNetTrace(stream.NetTraceConfig{Seed: 2026})
	fmt.Printf("trace: %s, %d packets, DDoS at [%d,%d), scan at [%d,%d)\n\n",
		trace.Name(), trace.Len(), trace.DDoSStart, trace.DDoSEnd,
		trace.ScanStart, trace.ScanEnd)
	fmt.Printf("%-8s %12s %12s %14s  %s\n",
		"epoch", "distinct-src", "flows", "scan-pairs", "alerts")

	cur := newEpoch(1)
	var baselineSrc, baselineScan float64
	epoch := 0
	inEpoch := 0

	flush := func() {
		srcs, flows, scans := cur.srcs.Estimate(), cur.flows.Estimate(), cur.scans.Estimate()
		alerts := ""
		// Alarm: epoch statistic over 4x the trailing baseline.
		if baselineSrc > 0 && srcs > 4*baselineSrc {
			alerts += fmt.Sprintf("DDOS-SUSPECT(srcs %.0fx baseline) ", srcs/baselineSrc)
		}
		if baselineScan > 0 && scans > 4*baselineScan && srcs < 2*baselineSrc {
			alerts += fmt.Sprintf("PORTSCAN-SUSPECT(pairs %.0fx baseline) ", scans/baselineScan)
		}
		fmt.Printf("%-8d %12.0f %12.0f %14.0f  %s\n", epoch, srcs, flows, scans, alerts)
		// Exponential moving baseline, only absorbing calm epochs.
		if alerts == "" {
			if baselineSrc == 0 {
				baselineSrc, baselineScan = srcs, scans
			} else {
				baselineSrc = 0.7*baselineSrc + 0.3*srcs
				baselineScan = 0.7*baselineScan + 0.3*scans
			}
		}
		epoch++
		cur = newEpoch(int64(epoch+1) * 100)
		inEpoch = 0
	}

	for {
		p, ok := trace.Next()
		if !ok {
			break
		}
		cur.srcs.Add(p.SrcKey())
		cur.flows.Add(p.FlowKey())
		cur.scans.Add(p.ScanKey())
		inEpoch++
		if inEpoch == epochLen {
			flush()
		}
	}
	if inEpoch > 0 {
		flush()
	}

	fmt.Printf("\nground truth: %d benign sources, %d spoofed DDoS sources, %d scanned ports\n",
		trace.BaselineSrcs, trace.DDoSSrcs, trace.ScanPorts)
	one := newEpoch(9999)
	fmt.Printf("per-epoch sketch state: %d KiB for all three statistics\n",
		(one.srcs.SpaceBits()+one.flows.SpaceBits()+one.scans.SpaceBits())/8/1024)
}
