// netmon: network monitoring with distinct-element sketches — the
// paper's motivating application (Section 1: routers tracking distinct
// destination IPs and source-destination pairs, DDoS and port-scan
// detection, Estan et al.'s Code Red measurement) — run end-to-end
// against a live knwd daemon instead of in-process sketches.
//
// Two edge routers export their packet streams into one in-process
// knwd over plain HTTP ingest, one windowed store per router. The
// operator side then uses only the daemon's query API:
//
//   - GET /v1/series turns each store's window ring into a
//     per-interval distinct-source time-series with rate-of-change
//     fields — the cardinality-spike alarm (a spoofed-source flood
//     multiplies distinct sources while byte counters barely move).
//   - GET /v1/query runs set algebra across the two routers' stores:
//     during the flood A−B explodes while B−A stays flat, localizing
//     the attack to router A's ingress without comparing packet logs.
//
// The daemon's clock is injected so six traffic intervals replay in
// milliseconds; a real deployment runs knwd -window-buckets 8
// -window-interval 1m and issues the same two GETs.
//
//	go run ./examples/netmon
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	knw "repro"
	"repro/service"
	"repro/store"
)

const (
	interval  = time.Minute
	buckets   = 8
	eps       = 0.05
	benignIPs = 2000 // steady-state source universe shared by both routers
	floodIPs  = 15000
)

// fakeClock drives the daemon's window rotation deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time { c.mu.Lock(); defer c.mu.Unlock(); return c.t }

func (c *fakeClock) advance(d time.Duration) { c.mu.Lock(); c.t = c.t.Add(d); c.mu.Unlock() }

func main() {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0).Truncate(interval)}
	srv, err := service.New(service.Config{Store: store.Config{
		Kind:    knw.KindConcurrentF0,
		Options: []knw.Option{knw.WithEpsilon(eps), knw.WithSeed(7)},
		Window:  store.Window{Buckets: buckets, Interval: interval},
		Now:     clock.now,
	}})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("== knwd up: windowed store, %d × %s ring ==\n\n", buckets, interval)

	// Six traffic intervals: five benign, then a spoofed-source DDoS
	// flood hits router A in the live interval. Benign traffic re-sees
	// the same ~2k sources (hot flows — the regime distinct counting
	// exists for); the flood is all fresh spoofed addresses.
	rng := rand.New(rand.NewSource(1))
	benign := func(draws int) []string {
		ks := make([]string, draws)
		for i := range ks {
			ks[i] = fmt.Sprintf("ip-%d", rng.Intn(benignIPs))
		}
		return ks
	}
	for t := 0; t < 6; t++ {
		aKeys := benign(6000)
		bKeys := benign(6000)
		if t == 5 { // the attack interval
			for i := 0; i < floodIPs; i++ {
				aKeys = append(aKeys, fmt.Sprintf("spoof-%d", i))
			}
		}
		ingest(hs.URL, "rtrA/src", aKeys)
		ingest(hs.URL, "rtrB/src", bKeys)
		if t < 5 {
			clock.advance(interval)
		}
	}

	// Operator query #1: the per-interval series with the spike alarm.
	// Baseline = mean of the earlier calm buckets; an interval at 3×
	// baseline trips the alarm.
	ser := getSeries(hs.URL, "rtrA/src", "6m")
	fmt.Printf("router A distinct sources per %s interval (span %s):\n", ser.Interval, ser.Span)
	var base float64
	calm := 0
	for i, b := range ser.Buckets {
		mark := ""
		if calm > 0 && b.Estimate > 3*base/float64(calm) {
			mark = "  <-- ALERT: cardinality spike (DDoS signature)"
		} else {
			base += b.Estimate
			calm++
		}
		fmt.Printf("  t+%dm %8.0f sources%s\n", i, b.Estimate, mark)
	}
	fmt.Printf("  span union %.0f, delta %+.0f, rate %+.1f sources/s\n\n",
		ser.Window, ser.Delta, ser.RatePerSec)
	live := ser.Buckets[len(ser.Buckets)-1].Estimate
	if live < 3*benignIPs {
		log.Fatalf("netmon: flood interval reads %.0f distinct sources, expected a spike well above %d", live, benignIPs)
	}

	// Operator query #2: set algebra across the two routers. The flood
	// sources live only in A's view, so A−B explodes while B−A stays
	// near zero and Jaccard collapses from ~1 to ~|B|/|A∪B|.
	q := getQuery(hs.URL, "rtrA/src", "rtrB/src")
	fmt.Printf("cross-router set query (scope=all):\n")
	fmt.Printf("  |A| %.0f  |B| %.0f  |A∪B| %.0f  |A∩B| %.0f  J %.3f\n",
		q.Cardinalities[0], q.Cardinalities[1], q.Union, q.Intersection, q.Jaccard)
	fmt.Printf("  only at router A: %.0f   only at router B: %.0f\n",
		q.Pair.DiffAB, q.Pair.DiffBA)
	if q.Pair.DiffAB < 0.8*floodIPs {
		log.Fatalf("netmon: A−B = %.0f, expected ≈ %d spoofed sources localized to A", q.Pair.DiffAB, floodIPs)
	}
	fmt.Printf("  => the source explosion is localized to router A's ingress\n")
}

// ingest POSTs newline keys and reads the estimate back as a drain
// barrier, so the injected clock cannot leave the interval before the
// write is attributed to its bucket.
func ingest(base, name string, keys []string) {
	body := strings.NewReader(strings.Join(keys, "\n") + "\n")
	resp, err := http.Post(base+"/v1/ingest?store="+name, "text/plain", body)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("ingest %s: HTTP %d: %s", name, resp.StatusCode, out)
	}
	resp, err = http.Get(base + "/v1/estimate?store=" + name)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

type seriesWire struct {
	Interval string `json:"interval"`
	Span     string `json:"span"`
	Buckets  []struct {
		Estimate float64 `json:"estimate"`
	} `json:"buckets"`
	Window     float64 `json:"window"`
	Delta      float64 `json:"delta"`
	RatePerSec float64 `json:"rate_per_sec"`
}

func getSeries(base, name, span string) seriesWire {
	var sw seriesWire
	getJSON(base+"/v1/series?store="+name+"&span="+span, &sw)
	return sw
}

type queryWire struct {
	Cardinalities []float64 `json:"cardinalities"`
	Union         float64   `json:"union"`
	Intersection  float64   `json:"intersection"`
	Jaccard       float64   `json:"jaccard"`
	Pair          struct {
		DiffAB float64 `json:"diff_a_minus_b"`
		DiffBA float64 `json:"diff_b_minus_a"`
	} `json:"pair"`
}

func getQuery(base, a, b string) queryWire {
	var qw queryWire
	getJSON(base+"/v1/query?stores="+a+","+b, &qw)
	return qw
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}
