// distributed: counting distinct elements across workers — the
// paper's union-of-streams setting ("F0-estimation is useful … for
// taking unions of streams", Section 1). Each worker sketches its own
// shard of the traffic, serializes its sketch to bytes (as it would
// for a network hop or a statistics catalog), and a coordinator
// deserializes and merges. Max-mergeable counters make the union
// exact: the merged sketch equals one built over the concatenation.
//
// The same pattern with L0 sketches computes a distributed Hamming
// diff: two sites stream their tables into same-seed sketches, ship a
// few hundred KB, and the coordinator learns how many rows differ.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	knw "repro"
)

const (
	workers  = 8
	perShard = 250_000
	overlap  = 50_000 // keys every worker sees (e.g. popular items)
)

func main() {
	opts := []knw.Option{knw.WithEpsilon(0.05), knw.WithDelta(0.2), knw.WithSeed(2026)}

	// --- worker side ---------------------------------------------------
	payloads := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk := knw.NewF0(opts...) // same options+seed everywhere
			rng := rand.New(rand.NewSource(int64(w)))
			// Worker-private keys.
			for i := 0; i < perShard; i++ {
				sk.Add(uint64(w)<<40 | uint64(i)<<1 | 1)
			}
			// Popular keys every worker also sees (must not double count).
			for i := 0; i < overlap; i++ {
				sk.Add(uint64(i)<<1 | 0)
			}
			// A bit of churn noise.
			for i := 0; i < perShard/4; i++ {
				sk.Add(uint64(w)<<40 | uint64(rng.Intn(perShard))<<1 | 1)
			}
			data, err := sk.MarshalBinary()
			if err != nil {
				panic(err)
			}
			payloads[w] = data
		}(w)
	}
	wg.Wait()

	// --- coordinator side ----------------------------------------------
	var union *knw.F0
	shipped := 0
	for w, data := range payloads {
		shipped += len(data)
		var sk knw.F0
		if err := sk.UnmarshalBinary(data); err != nil {
			panic(err)
		}
		if union == nil {
			union = &sk
			continue
		}
		if err := union.Merge(&sk); err != nil {
			panic(err)
		}
		_ = w
	}

	truth := workers*perShard + overlap
	est := union.Estimate()
	fmt.Printf("workers: %d, shipped: %d KiB total (%d KiB per sketch)\n",
		workers, shipped/1024, shipped/1024/workers)
	fmt.Printf("union distinct: true %d, estimated %.0f (%.2f%% error)\n",
		truth, est, 100*(est-float64(truth))/float64(truth))

	// --- distributed table diff with L0 --------------------------------
	siteA := knw.NewL0(opts...)
	siteB := knw.NewL0(opts...)
	for i := 0; i < 300_000; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15 + 1
		siteA.Update(k, 1)
		if i >= 2_000 { // site B is missing the first 2000 rows
			siteB.Update(k, 1)
		}
	}
	diff, err := knw.HammingDiff(siteA, siteB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replica diff: true 2000 rows, estimated %.0f\n", diff)
}
