// Quickstart: count distinct elements in a stream with the KNW sketch,
// then count surviving elements in a stream with deletions using the
// L0 sketch.
package main

import (
	"fmt"

	knw "repro"
)

func main() {
	// --- F0: distinct elements, insertion-only ------------------------
	//
	// ε = 0.05 target error, δ = 0.05 failure probability. The sketch
	// uses O(ε⁻² + log n) bits per copy and O(1) time per operation,
	// no matter how long the stream gets.
	sk := knw.NewF0(knw.WithEpsilon(0.05), knw.WithSeed(42))

	const distinct = 1_000_000
	for i := 0; i < distinct; i++ {
		key := uint64(i)*0x9e3779b97f4a7c15 + 1
		sk.Add(key)
		sk.Add(key) // duplicates never change the answer
	}

	fmt.Printf("F0:  true %d, estimated %.0f  (%.2f%% error, %d KiB state)\n",
		distinct, sk.Estimate(),
		100*(sk.Estimate()-distinct)/distinct,
		sk.SpaceBits()/8/1024)

	// Estimates are available at any point midstream in O(1) — add more
	// and ask again.
	for i := 0; i < 500_000; i++ {
		sk.Add(uint64(i+distinct)*0x9e3779b97f4a7c15 + 1)
	}
	fmt.Printf("F0:  after 500k more: estimated %.0f (true %d)\n",
		sk.Estimate(), distinct+500_000)

	// Typed keys: wrap any sketch in Keyed to ingest strings (or
	// []byte) through the documented seeded hash, batched or not.
	users := knw.NewKeyed[string](knw.NewF0(knw.WithSeed(7)))
	users.AddBatch([]string{"alice", "bob", "alice", "carol", "bob"})
	fmt.Printf("F0:  distinct users in tiny stream: %.0f (exact below 100)\n",
		users.Estimate())

	// --- L0: distinct elements under deletions ------------------------
	//
	// The Hamming norm |{i : x_i ≠ 0}|: items fully deleted stop
	// counting; items with any nonzero net count (even negative) do.
	hs := knw.NewL0(knw.WithEpsilon(0.1), knw.WithSeed(42))

	for i := 0; i < 200_000; i++ {
		hs.Update(uint64(i)+1, +3)
	}
	for i := 0; i < 150_000; i++ {
		hs.Update(uint64(i)+1, -3) // fully delete the first 150k
	}
	fmt.Printf("L0:  true %d live, estimated %.0f\n", 50_000, hs.Estimate())

	// --- Merging (distributed streams) --------------------------------
	shardA := knw.NewF0(knw.WithSeed(99))
	shardB := knw.NewF0(knw.WithSeed(99)) // same seed → mergeable
	for i := 0; i < 300_000; i++ {
		k := uint64(i)*2654435761 + 1
		if i%2 == 0 {
			shardA.Add(k)
		} else {
			shardB.Add(k)
		}
	}
	if err := shardA.Merge(shardB); err != nil {
		panic(err)
	}
	fmt.Printf("F0:  union of two shards: estimated %.0f (true 300000)\n",
		shardA.Estimate())
}
